"""CoMD molecular-dynamics proxy application (Sec. IV-B).

Lennard-Jones forces over a link-cell neighbour structure with
velocity-Verlet integration.  Compute-bound (Figure 7c); the force
kernel is >90% of runtime; Table I counts 3 (LJ) kernels.
"""

from ..base import ProxyApp
from . import (
    port_cppamp,
    port_hc,
    port_omp_offload,
    port_openacc,
    port_opencl,
    port_openmp,
    port_serial,
)
from .driver import REBIN_INTERVAL, compute_forces, epochs, run_reference
from .kernels import ATOMS_PER_CELL, advance_position, advance_velocity, kernel_specs, lj_force
from .reference import (
    LATTICE_A0,
    LJ_CUTOFF,
    CoMDConfig,
    CoMDState,
    bin_atoms,
    build_neighbor_map,
    default_config,
    make_state,
    needs_rebin,
    paper_config,
)

APP = ProxyApp(
    name="CoMD",
    description="Lennard-Jones molecular dynamics with link cells (Sec. IV-B)",
    command_line="./CoMD -x 60 -y 60 -z 60",
    n_kernels=3,
    boundedness="Compute",
    default_config=default_config,
    paper_config=paper_config,
    ports={
        port_serial.model_name: port_serial.run,
        port_openmp.model_name: port_openmp.run,
        port_opencl.model_name: port_opencl.run,
        port_cppamp.model_name: port_cppamp.run,
        port_openacc.model_name: port_openacc.run,
        port_omp_offload.model_name: port_omp_offload.run,
        port_hc.model_name: port_hc.run,
    },
)

__all__ = [
    "APP",
    "ATOMS_PER_CELL",
    "CoMDConfig",
    "CoMDState",
    "LATTICE_A0",
    "LJ_CUTOFF",
    "REBIN_INTERVAL",
    "advance_position",
    "advance_velocity",
    "bin_atoms",
    "build_neighbor_map",
    "compute_forces",
    "default_config",
    "epochs",
    "kernel_specs",
    "lj_force",
    "make_state",
    "needs_rebin",
    "paper_config",
    "run_reference",
]
