"""CoMD: Heterogeneous Compute port (Section VII).

Single source, raw pointers, explicit staging — the atoms are uploaded
once, the whole velocity-Verlet loop runs device-resident, and only
the link-cell rebuilds synchronize with the host.
"""

from __future__ import annotations

from ...models.base import ExecutionContext
from ...models.hc import HCRuntime
from ..base import RunResult, make_result
from .driver import epochs
from .kernels import advance_position, advance_velocity, kernel_specs, lj_force
from .reference import LJ_CUTOFF, CoMDConfig, bin_atoms, make_state

model_name = "Heterogeneous Compute"


def run(ctx: ExecutionContext, config: CoMDConfig) -> RunResult:
    state = make_state(config, ctx.precision)
    specs = kernel_specs(config, ctx.precision)
    dt = config.dt
    box = config.box  # bind once: residency tracking is per-object
    hc = HCRuntime(ctx)

    hc.copy_to_device(state.positions)
    hc.copy_to_device(state.velocities)
    hc.copy_to_device(state.forces)
    hc.copy_to_device(state.pe_per_atom)
    hc.copy_to_device(box)
    hc.copy_to_device(state.neighbor_cells)
    hc.copy_to_device(state.cell_atoms)
    hc.copy_to_device(state.cell_count)

    def launch_force() -> None:
        hc.launch(
            lj_force, specs["comd.lj_force"],
            arrays=[state.positions, state.forces, state.pe_per_atom,
                    state.cell_atoms, state.cell_count, state.neighbor_cells,
                    box],
            scalars=[LJ_CUTOFF],
        )

    launch_force()
    chunks = list(epochs(config.steps))
    for i, chunk in enumerate(chunks):
        for _ in range(chunk):
            hc.launch(advance_velocity, specs["comd.advance_velocity"],
                      arrays=[state.velocities, state.forces], scalars=[0.5 * dt])
            hc.launch(advance_position, specs["comd.advance_position"],
                      arrays=[state.positions, state.velocities, box], scalars=[dt])
            launch_force()
            hc.launch(advance_velocity, specs["comd.advance_velocity"],
                      arrays=[state.velocities, state.forces], scalars=[0.5 * dt])
        if i + 1 < len(chunks):
            # Host rebuilds the link cells from fresh positions, then
            # restages the (possibly reshaped) tables.
            hc.copy_to_host(state.positions)
            bin_atoms(state)
            hc.copy_to_device(state.cell_atoms)
            hc.copy_to_device(state.cell_count)

    hc.copy_to_host(state.positions)
    hc.copy_to_host(state.velocities)
    hc.copy_to_host(state.forces)
    hc.copy_to_host(state.pe_per_atom)
    return make_result("CoMD", ctx, model_name, hc.finish(), state.checksum())
