"""CoMD device kernels and characterizations.

Three kernels, as in Table I ("3 (LJ)"): the Lennard-Jones force
computation (>90% of runtime), the velocity half-kick, and the
position advance.
"""

from __future__ import annotations

import numpy as np

from ...engine.kernel import AccessKind, AccessPattern, KernelSpec, OpCount
from ...hardware.specs import Precision
from .reference import LJ_CUTOFF, CoMDConfig

#: Atoms per link cell on the perfect FCC lattice (2x2x2 unit cells).
ATOMS_PER_CELL = 32


def lj_force(
    positions: np.ndarray,
    forces: np.ndarray,
    pe_per_atom: np.ndarray,
    cell_atoms: np.ndarray,
    cell_count: np.ndarray,
    neighbor_cells: np.ndarray,
    box: np.ndarray,
    cutoff: float,
) -> None:
    """Kernel 1: truncated-and-shifted LJ forces via the 27-cell stencil.

    One thread per atom in the GPU formulation; here each neighbour
    offset is evaluated for all cells at once.  Periodic minimum-image
    convention; the potential is shifted to zero at the cutoff so
    energy is continuous.
    """
    dtype = positions.dtype
    n_cells, max_occ = cell_atoms.shape
    valid = cell_atoms >= 0
    idx = np.where(valid, cell_atoms, 0)
    pos_c = positions[idx]  # (nc, m, 3)
    force_acc = np.zeros_like(pos_c)
    pe_acc = np.zeros((n_cells, max_occ), dtype=dtype)

    rc2 = dtype.type(cutoff * cutoff)
    sr6 = (1.0 / rc2) ** 3
    e_shift = dtype.type(4.0 * (sr6 * sr6 - sr6))
    box_t = box.astype(dtype)
    inv_box = (1.0 / box_t).astype(dtype)
    eps = dtype.type(1e-12)

    valid_f = valid.astype(dtype)
    for k in range(neighbor_cells.shape[1]):
        ncell = neighbor_cells[:, k]
        pos_n = pos_c[ncell]  # (nc, m, 3), gathered cell-block at a time
        d = pos_c[:, :, None, :] - pos_n[:, None, :, :]
        d -= np.round(d * inv_box) * box_t
        r2 = (d * d).sum(axis=-1)
        pair_mask = ((r2 < rc2) & (r2 > eps)).astype(dtype)
        pair_mask *= valid_f[:, :, None]
        pair_mask *= valid_f[ncell][:, None, :]
        r2i = pair_mask / np.maximum(r2, eps)  # exact zero where masked
        r6i = r2i * r2i * r2i
        fcoef = 24.0 * (2.0 * r6i * r6i - r6i) * r2i
        force_acc += np.einsum("cij,cijx->cix", fcoef, d)
        pe_acc += (4.0 * (r6i * r6i - r6i) - e_shift * pair_mask).sum(axis=2)

    forces[:] = 0.0
    pe_per_atom[:] = 0.0
    flat = idx[valid]
    forces[flat] = force_acc[valid]
    pe_per_atom[flat] = 0.5 * pe_acc[valid]  # halve the double-counted pairs


def advance_velocity(velocities: np.ndarray, forces: np.ndarray, dt_half: float) -> None:
    """Kernel 2: velocity half-kick v += (dt/2) * F / m (m = 1)."""
    velocities += forces * velocities.dtype.type(dt_half)


def advance_position(positions: np.ndarray, velocities: np.ndarray, box: np.ndarray, dt: float) -> None:
    """Kernel 3: drift x += dt * v with periodic wrap-around."""
    dtype = positions.dtype
    positions += velocities * dtype.type(dt)
    np.mod(positions, box.astype(dtype), out=positions)


def kernel_specs(config: CoMDConfig, precision: Precision) -> dict[str, KernelSpec]:
    """Characterize the three kernels for the timing model."""
    ebytes = precision.bytes_per_element
    n = config.n_atoms
    checks = 27 * ATOMS_PER_CELL  # pair candidates examined per atom
    accepted = 70  # pairs inside the cutoff sphere on the FCC lattice
    force_flops = checks * 9 + accepted * 15

    specs = {
        "comd.lj_force": KernelSpec(
            name="comd.lj_force",
            work_items=n,
            ops=OpCount(
                flops=float(force_flops * n),
                int_ops=float(checks * 2 * n),
                bytes_read=float((27 * 3 + 6) * ebytes * n),
                bytes_written=float(4 * ebytes * n),
            ),
            access=AccessPattern(
                kind=AccessKind.NEIGHBOR_LIST,
                working_set_bytes=float(10 * ebytes * n),
                request_bytes=4 * ebytes,
                reuse_fraction=0.35,
                row_buffer_efficiency=0.85,
            ),
            workgroup_size=ATOMS_PER_CELL * 2,
            instructions_per_item=float(force_flops * 1.1),
            registers_per_thread=64,
            lds_bytes_per_workgroup=2 * ATOMS_PER_CELL * 4 * ebytes * 2,
            lds_traffic_filter=0.5,
            divergence=0.3,
            unroll_benefit=0.15,
            cpu_simd_fraction=0.5,
        ),
        "comd.advance_velocity": KernelSpec(
            name="comd.advance_velocity",
            work_items=n,
            ops=OpCount(
                flops=float(6 * n),
                int_ops=float(2 * n),
                bytes_read=float(6 * ebytes * n),
                bytes_written=float(3 * ebytes * n),
            ),
            access=AccessPattern(
                kind=AccessKind.STREAMING,
                working_set_bytes=float(9 * ebytes * n),
                request_bytes=ebytes,
            ),
            workgroup_size=256,
            instructions_per_item=14.0,
            registers_per_thread=12,
            cpu_simd_fraction=0.95,
        ),
        "comd.advance_position": KernelSpec(
            name="comd.advance_position",
            work_items=n,
            ops=OpCount(
                flops=float(9 * n),
                int_ops=float(2 * n),
                bytes_read=float(6 * ebytes * n),
                bytes_written=float(3 * ebytes * n),
            ),
            access=AccessPattern(
                kind=AccessKind.STREAMING,
                working_set_bytes=float(9 * ebytes * n),
                request_bytes=ebytes,
            ),
            workgroup_size=256,
            instructions_per_item=20.0,
            registers_per_thread=12,
            cpu_simd_fraction=0.9,
        ),
    }
    return specs
