"""CoMD velocity-Verlet driver (serial reference) and shared schedule.

Every port runs the same schedule: an initial force evaluation, then
velocity-Verlet steps grouped into *epochs* of ``REBIN_INTERVAL``
steps.  The link-cell table is rebuilt on the host between epochs
(CoMD re-sorts its atoms periodically); device ports synchronize
positions, rebuild, and re-stage the table at those points only.
"""

from __future__ import annotations

from typing import Iterator

from ...hardware.specs import Precision
from .kernels import advance_position, advance_velocity, lj_force
from .reference import LJ_CUTOFF, CoMDConfig, CoMDState, bin_atoms, make_state

#: Steps between link-cell rebuilds (host-side in every port).
REBIN_INTERVAL = 20


def epochs(total_steps: int, interval: int = REBIN_INTERVAL) -> Iterator[int]:
    """Chunk ``total_steps`` into rebin epochs of at most ``interval``."""
    remaining = total_steps
    while remaining > 0:
        chunk = min(interval, remaining)
        yield chunk
        remaining -= chunk


def compute_forces(state: CoMDState) -> None:
    """Reference force evaluation on the host arrays."""
    lj_force(
        state.positions,
        state.forces,
        state.pe_per_atom,
        state.cell_atoms,
        state.cell_count,
        state.neighbor_cells,
        state.config.box,
        LJ_CUTOFF,
    )


def run_reference(config: CoMDConfig, precision: Precision) -> CoMDState:
    """Serial velocity-Verlet integration of the LJ crystal."""
    state = make_state(config, precision)
    dt = config.dt
    compute_forces(state)
    chunks = list(epochs(config.steps))
    for i, chunk in enumerate(chunks):
        for _ in range(chunk):
            advance_velocity(state.velocities, state.forces, 0.5 * dt)
            advance_position(state.positions, state.velocities, config.box, dt)
            compute_forces(state)
            advance_velocity(state.velocities, state.forces, 0.5 * dt)
        if i + 1 < len(chunks):
            bin_atoms(state)
    return state
