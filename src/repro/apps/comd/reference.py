"""CoMD: Lennard-Jones molecular dynamics reference implementation.

Section IV-B: "CoMD is a molecular dynamics proxy application which
performs atomic-scale simulation by solving the Newton's laws between
particles ... every particle interacts with all other particles
within a set cutoff distance ... Computation of forces accounts for
more than 90% of total execution time."

The reproduction implements the LJ variant (Table I counts "3 (LJ)"
kernels): an FCC lattice in reduced Lennard-Jones units, a link-cell
neighbour search (cell edge >= cutoff, 27-cell stencil), truncated
and shifted LJ forces with periodic boundaries, and velocity-Verlet
integration.  Atoms are re-binned into cells whenever any displacement
exceeds half the cell margin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...engine.memo import memoized_setup, projection_stub
from ...hardware.specs import Precision

#: Reduced LJ units: epsilon = sigma = mass = 1.
LJ_CUTOFF = 2.5
#: FCC lattice constant at the zero-pressure LJ minimum.
LATTICE_A0 = 2.0 ** (1.0 / 6.0) * np.sqrt(2.0)
#: FCC basis, in lattice-constant units.
FCC_BASIS = np.array(
    [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
)


@dataclass(frozen=True)
class CoMDConfig:
    """Problem definition: ``./CoMD -x NX -y NY -z NZ``."""

    nx: int
    ny: int
    nz: int
    steps: int = 10
    dt: float = 0.002
    temperature: float = 0.1  # initial reduced temperature

    def __post_init__(self) -> None:
        for name in ("nx", "ny", "nz"):
            v = getattr(self, name)
            if v < 6 or v % 2:
                raise ValueError(
                    f"{name} must be an even number >= 6: link cells span two "
                    "unit cells and the periodic 27-stencil needs at least "
                    "three distinct cells per dimension"
                )
        if self.steps < 1:
            raise ValueError("need at least one step")

    @property
    def n_atoms(self) -> int:
        return 4 * self.nx * self.ny * self.nz

    @property
    def box(self) -> np.ndarray:
        return np.array([self.nx, self.ny, self.nz], dtype=float) * LATTICE_A0

    @property
    def cells_per_dim(self) -> tuple[int, int, int]:
        # One link cell spans two unit cells: edge 2*a0 = 3.17 > cutoff.
        return (self.nx // 2, self.ny // 2, self.nz // 2)


def default_config() -> CoMDConfig:
    """CI-sized run (12^3 unit cells = 6912 atoms)."""
    return CoMDConfig(nx=12, ny=12, nz=12, steps=5)


def paper_config() -> CoMDConfig:
    """Paper-sized run (Table I: ``./CoMD -x 60 -y 60 -z 60``)."""
    return CoMDConfig(nx=60, ny=60, nz=60, steps=100)


@dataclass
class CoMDState:
    """Atom arrays plus the link-cell structure."""

    config: CoMDConfig
    positions: np.ndarray  # (n, 3)
    velocities: np.ndarray  # (n, 3)
    forces: np.ndarray  # (n, 3)
    pe_per_atom: np.ndarray  # (n,)
    #: Link cells: padded atom-index table, shape (n_cells, max_occupancy).
    cell_atoms: np.ndarray
    cell_count: np.ndarray  # (n_cells,)
    #: Precomputed 27-neighbour cell ids, shape (n_cells, 27).
    neighbor_cells: np.ndarray
    #: Atom positions at the last re-binning (displacement check).
    rebin_positions: np.ndarray

    def kinetic_energy(self) -> float:
        return 0.5 * float((self.velocities**2).sum())

    def potential_energy(self) -> float:
        return float(self.pe_per_atom.sum())

    def total_energy(self) -> float:
        return self.kinetic_energy() + self.potential_energy()

    def checksum(self) -> float:
        return self.total_energy()


@memoized_setup
def make_state(config: CoMDConfig, precision: Precision, seed: int = 11) -> CoMDState:
    """FCC lattice with a small Maxwellian velocity perturbation."""
    dtype = np.dtype(np.float32 if precision is Precision.SINGLE else np.float64)
    cells = np.stack(
        np.meshgrid(
            np.arange(config.nx), np.arange(config.ny), np.arange(config.nz), indexing="ij"
        ),
        axis=-1,
    ).reshape(-1, 3)
    positions = (cells[:, None, :] + FCC_BASIS[None, :, :]).reshape(-1, 3) * LATTICE_A0
    positions = positions.astype(dtype)

    rng = np.random.default_rng(seed)
    velocities = rng.normal(0.0, np.sqrt(config.temperature), size=positions.shape)
    velocities -= velocities.mean(axis=0)  # zero net momentum
    velocities = velocities.astype(dtype)

    n = config.n_atoms
    state = CoMDState(
        config=config,
        positions=positions,
        velocities=velocities,
        forces=np.zeros((n, 3), dtype=dtype),
        pe_per_atom=np.zeros(n, dtype=dtype),
        cell_atoms=np.empty(0, dtype=np.int64),
        cell_count=np.empty(0, dtype=np.int64),
        neighbor_cells=np.empty(0, dtype=np.int64),
        rebin_positions=positions.copy(),
    )
    bin_atoms(state)
    state.neighbor_cells = build_neighbor_map(config)
    return state


@projection_stub(make_state)
def _projection_state(config: CoMDConfig, precision: Precision, seed: int = 11) -> CoMDState:
    """Schedule-capture build: a fresh real state, skipping the setup
    cache (the build is cheaper than the LRU's deep copies, and capture
    must not pollute — or be polluted by — cached state)."""
    return make_state.__wrapped__(config, precision, seed)


def bin_atoms(state: CoMDState) -> None:
    """(Re)build the padded link-cell table from current positions."""
    if state.cell_atoms.size and np.array_equal(state.positions, state.rebin_positions):
        # No atom has moved since the last binning: the table is a pure
        # function of positions, so recomputing would reproduce it
        # bit-for-bit.  Ports rebin unconditionally between epochs; in
        # projection mode positions never change, making this the
        # common case there.
        return
    config = state.config
    ncx, ncy, ncz = config.cells_per_dim
    box = config.box
    cell_edge = box / np.array([ncx, ncy, ncz])
    wrapped = np.mod(state.positions, box.astype(state.positions.dtype))
    idx3 = np.minimum(
        (wrapped / cell_edge.astype(wrapped.dtype)).astype(np.int64),
        np.array([ncx - 1, ncy - 1, ncz - 1]),
    )
    cell_ids = (idx3[:, 0] * ncy + idx3[:, 1]) * ncz + idx3[:, 2]
    n_cells = ncx * ncy * ncz
    order = np.argsort(cell_ids, kind="stable")
    sorted_cells = cell_ids[order]
    counts = np.bincount(sorted_cells, minlength=n_cells)
    max_occ = int(counts.max())
    table = np.full((n_cells, max_occ), -1, dtype=np.int64)
    offsets = np.zeros(n_cells + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    # Scatter each atom into its cell's next free slot: the stable sort
    # keeps members of one cell consecutive in `order`, so an atom's
    # slot is its rank within the cell's run.
    slot = np.arange(len(order), dtype=np.int64) - offsets[sorted_cells]
    table[sorted_cells, slot] = order
    state.cell_atoms = table
    state.cell_count = counts.astype(np.int64)
    state.rebin_positions = state.positions.copy()


def needs_rebin(state: CoMDState) -> bool:
    """True when some atom moved more than half the cell safety margin."""
    config = state.config
    cell_edge = float(min(config.box / np.array(config.cells_per_dim)))
    margin = 0.5 * (cell_edge - LJ_CUTOFF)
    displacement = np.abs(state.positions - state.rebin_positions).max()
    return bool(displacement > max(margin, 1e-6))


def build_neighbor_map(config: CoMDConfig) -> np.ndarray:
    """27 periodic neighbour cell ids for every link cell."""
    ncx, ncy, ncz = config.cells_per_dim
    ids = np.arange(ncx * ncy * ncz)
    ix = ids // (ncy * ncz)
    iy = (ids // ncz) % ncy
    iz = ids % ncz
    neighbors = np.empty((len(ids), 27), dtype=np.int64)
    col = 0
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                jx = (ix + dx) % ncx
                jy = (iy + dy) % ncy
                jz = (iz + dz) % ncz
                neighbors[:, col] = (jx * ncy + jy) * ncz + jz
                col += 1
    return neighbors
