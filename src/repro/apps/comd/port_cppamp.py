"""CoMD: C++ AMP port.

The force lambda runs on a *tiled* extent with neighbour positions in
``tile_static`` storage — the tiling the paper credits with "almost
3x" for CoMD (Sec. VI-C).  The CLAMP runtime still owns the transfer
schedule, writing results back after every launch on the dGPU.
"""

from __future__ import annotations

from ...models import cppamp as amp
from ...models.base import ExecutionContext
from ..base import RunResult, make_result
from .driver import epochs
from .kernels import ATOMS_PER_CELL, advance_position, advance_velocity, kernel_specs, lj_force
from .reference import LJ_CUTOFF, CoMDConfig, bin_atoms, make_state

model_name = "C++ AMP"

TILE_SIZE = ATOMS_PER_CELL * 2


def run(ctx: ExecutionContext, config: CoMDConfig) -> RunResult:
    state = make_state(config, ctx.precision)
    specs = kernel_specs(config, ctx.precision)
    dt = config.dt

    rt = amp.AmpRuntime(ctx)
    pos_view = amp.array_view(rt, state.positions)
    vel_view = amp.array_view(rt, state.velocities)
    force_view = amp.array_view(rt, state.forces)
    pe_view = amp.array_view(rt, state.pe_per_atom)
    box_view = amp.array_view(rt, config.box)
    neigh_view = amp.array_view(rt, state.neighbor_cells)
    cells_view = amp.array_view(rt, state.cell_atoms)
    counts_view = amp.array_view(rt, state.cell_count)

    n = config.n_atoms
    tiled_atoms = -(-n // TILE_SIZE) * TILE_SIZE

    def launch_force() -> None:
        rt.parallel_for_each(
            amp.extent(tiled_atoms).tile(TILE_SIZE),
            lj_force,
            specs["comd.lj_force"],
            views=[pos_view, force_view, pe_view, cells_view, counts_view, neigh_view, box_view],
            scalars=[LJ_CUTOFF],
            writes=[force_view, pe_view],
        )

    launch_force()
    chunks = list(epochs(config.steps))
    for i, chunk in enumerate(chunks):
        for _ in range(chunk):
            rt.parallel_for_each(
                amp.extent(n), advance_velocity, specs["comd.advance_velocity"],
                views=[vel_view, force_view], scalars=[0.5 * dt], writes=[vel_view],
            )
            rt.parallel_for_each(
                amp.extent(n), advance_position, specs["comd.advance_position"],
                views=[pos_view, vel_view, box_view], scalars=[dt], writes=[pos_view],
            )
            launch_force()
            rt.parallel_for_each(
                amp.extent(n), advance_velocity, specs["comd.advance_velocity"],
                views=[vel_view, force_view], scalars=[0.5 * dt], writes=[vel_view],
            )
        if i + 1 < len(chunks):
            pos_view.synchronize()
            bin_atoms(state)
            # Cell tables may change shape after a rebuild: re-wrap them.
            cells_view = amp.array_view(rt, state.cell_atoms)
            counts_view = amp.array_view(rt, state.cell_count)

    pos_view.synchronize()
    vel_view.synchronize()
    force_view.synchronize()
    pe_view.synchronize()
    return make_result("CoMD", ctx, model_name, rt.simulated_seconds, state.checksum())
