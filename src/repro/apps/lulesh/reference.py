"""LULESH serial reference driver and shared host-side logic.

The reference runs the 28-kernel schedule directly over the state
arrays (no programming-model API) and is the correctness oracle for
every port.  The host-side time-step control (`advance_dt`,
`check_qstop`) is shared by all drivers.
"""

from __future__ import annotations

import numpy as np

from ...engine.memo import memoized_setup, projection_stub
from ...hardware.specs import Precision
from .kernels import SCHEDULE
from .physics import (
    DT_MAX_SCALE,
    QSTOP,
    LuleshConfig,
    LuleshState,
    QStopError,
)


def check_qstop(q_max: np.ndarray) -> None:
    """Host check of the qstop reduction scalar: abort unstable runs."""
    if float(q_max[0]) > QSTOP:
        raise QStopError(f"artificial viscosity {q_max[0]:.3e} exceeded QSTOP")


def next_dt(
    current_dt: float,
    dt_courant_min: np.ndarray,
    dt_hydro_min: np.ndarray,
) -> float:
    """Host time-step control from the two constraint reductions."""
    candidate = min(float(dt_courant_min[0]), float(dt_hydro_min[0]))
    if not np.isfinite(candidate) or candidate <= 0:
        candidate = current_dt * DT_MAX_SCALE
    return float(min(current_dt * DT_MAX_SCALE, candidate))


@memoized_setup
def make_state(config: LuleshConfig, precision: Precision) -> LuleshState:
    """Initialise the Sedov problem at the requested precision."""
    dtype = np.dtype(np.float32 if precision is Precision.SINGLE else np.float64)
    return LuleshState(config=config, dtype=dtype)


@projection_stub(make_state)
def _projection_state(config: LuleshConfig, precision: Precision) -> LuleshState:
    """Schedule-capture build: a fresh real state, skipping the setup
    cache (initialisation is cheaper than the LRU's deep copies, and
    capture must not pollute — or be polluted by — cached state)."""
    return make_state.__wrapped__(config, precision)


def run_iteration(state: LuleshState) -> None:
    """One Lagrange-leapfrog iteration via the 28-kernel schedule."""
    arrays = state.arrays()
    scalars = {"dt": state.dt}
    for step in SCHEDULE:
        args = [arrays[name] for name in step.arrays]
        args.extend(scalars[name] for name in step.scalars)
        step.func(*args)
        if step.name == "lulesh.qstop_check":
            check_qstop(state.q_max)
    state.time += state.dt
    state.dt = next_dt(state.dt, state.dt_courant_min, state.dt_hydro_min)


def run_reference(config: LuleshConfig, precision: Precision) -> LuleshState:
    """Run the full Sedov problem serially; returns the final state."""
    state = make_state(config, precision)
    for _ in range(config.iterations):
        run_iteration(state)
    return state
