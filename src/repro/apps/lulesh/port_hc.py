"""LULESH: Heterogeneous Compute port (Section VII).

Single source with explicit staging: the mesh uploads once, all 28
kernels run device-resident (no CLAMP-style compiler bug, no per-launch
write-backs), and only the three reduction scalars synchronize per
iteration.
"""

from __future__ import annotations

from ...models.base import ExecutionContext
from ...models.hc import HCRuntime
from ..base import RunResult, make_result
from .kernels import SCHEDULE, kernel_specs
from .physics import LuleshConfig
from .reference import check_qstop, make_state, next_dt

model_name = "Heterogeneous Compute"


def run(ctx: ExecutionContext, config: LuleshConfig) -> RunResult:
    state = make_state(config, ctx.precision)
    specs = kernel_specs(config, ctx.precision)
    arrays = state.arrays()

    hc = HCRuntime(ctx)
    for host in arrays.values():
        hc.copy_to_device(host)

    for _ in range(config.iterations):
        scalars = {"dt": state.dt}
        for step in SCHEDULE:
            hc.launch(
                step.func,
                specs[step.name],
                arrays=[arrays[name] for name in step.arrays],
                scalars=[scalars[name] for name in step.scalars],
            )
            if step.name == "lulesh.qstop_check":
                hc.copy_to_host(state.q_max)
                check_qstop(state.q_max)
        hc.copy_to_host(state.dt_courant_min)
        hc.copy_to_host(state.dt_hydro_min)
        state.time += state.dt
        state.dt = next_dt(state.dt, state.dt_courant_min, state.dt_hydro_min)

    for name in ("e", "v", "xd", "yd", "zd"):
        hc.copy_to_host(arrays[name])
    return make_result("LULESH", ctx, model_name, hc.finish(), state.checksum())
