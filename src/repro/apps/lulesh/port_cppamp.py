"""LULESH: C++ AMP port.

``array_view`` per state array and one ``parallel_for_each`` per
kernel; the CLAMP runtime decides when data moves (conservatively, on
the discrete GPU).  On that platform CLAMP v0.6.0 also fails to
compile ``calc_kinematics`` — as in the paper, that one kernel falls
back to the CPU, dragging its seven arrays across PCIe every
iteration ("one kernel was implemented on the CPU which led to
data-transfer overhead").
"""

from __future__ import annotations

from ...models import cppamp as amp
from ...models.base import ExecutionContext
from ..base import RunResult, make_result
from .kernels import SCHEDULE, kernel_specs
from .physics import LuleshConfig
from .reference import check_qstop, make_state, next_dt

model_name = "C++ AMP"

TILE_SIZE = 128


def run(ctx: ExecutionContext, config: LuleshConfig) -> RunResult:
    state = make_state(config, ctx.precision)
    specs = kernel_specs(config, ctx.precision)
    arrays = state.arrays()

    rt = amp.AmpRuntime(ctx)
    views = {name: amp.array_view(rt, host) for name, host in arrays.items()}

    for _ in range(config.iterations):
        scalars = {"dt": state.dt}
        for step in SCHEDULE:
            spec = specs[step.name]
            step_views = [views[name] for name in step.arrays]
            step_scalars = [scalars[name] for name in step.scalars]
            write_views = [views[name] for name in step.writes]
            if rt.compiles(step.name):
                domain = amp.extent(spec.work_items)
                rt.parallel_for_each(
                    domain,
                    step.func,
                    spec,
                    views=step_views,
                    scalars=step_scalars,
                    writes=write_views,
                )
            else:
                # CLAMP compiler bug: run this kernel on the host CPU.
                rt.cpu_fallback_loop(step.func, spec, step_views, step_scalars)
            if step.name == "lulesh.qstop_check":
                views["q_max"].synchronize()
                check_qstop(state.q_max)
        views["dt_courant_min"].synchronize()
        views["dt_hydro_min"].synchronize()
        state.time += state.dt
        state.dt = next_dt(state.dt, state.dt_courant_min, state.dt_hydro_min)

    for name in ("e", "v", "xd", "yd", "zd"):
        views[name].synchronize()
    return make_result("LULESH", ctx, model_name, rt.simulated_seconds, state.checksum())
