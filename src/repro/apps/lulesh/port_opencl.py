"""LULESH: OpenCL port.

Classic explicit structure: every state array gets a ``cl_mem``
buffer, the whole mesh is staged once before the time loop, and only
what the host genuinely needs each iteration (the two constraint
arrays and the qstop snapshot) is read back.  This explicit minimal
transfer schedule is exactly the advantage the paper credits for
OpenCL's discrete-GPU wins.
"""

from __future__ import annotations

from ...models import opencl as cl
from ...models.base import ExecutionContext
from ..base import RunResult, make_result
from .kernels import SCHEDULE, kernel_specs
from .physics import LuleshConfig
from .reference import check_qstop, make_state, next_dt

model_name = "OpenCL"

WORKGROUP_SIZE = 128


def run(ctx: ExecutionContext, config: LuleshConfig) -> RunResult:
    state = make_state(config, ctx.precision)
    specs = kernel_specs(config, ctx.precision)
    arrays = state.arrays()

    # InitCl(): platform, device, context, queue, program.
    platform = cl.get_platforms(ctx)[0]
    device = next(d for d in platform.get_devices() if d.is_gpu)
    context = cl.Context(ctx, [device])
    queue = cl.CommandQueue(context, device)
    program = cl.Program(context).build()

    # CreateClBuffer() + CopyClDataToGPU(): one staging pass, up front.
    buffers: dict[str, cl.Buffer] = {}
    for name, host in arrays.items():
        buffers[name] = cl.Buffer(context, cl.MemFlags.READ_WRITE, size=host.nbytes)
        queue.enqueue_write_buffer(buffers[name], host)

    # clCreateKernel for all 28 kernels.
    kernels = {
        step.name: program.create_kernel(step.name, step.func, specs[step.name])
        for step in SCHEDULE
    }

    for _ in range(config.iterations):
        scalars = {"dt": state.dt}
        for step in SCHEDULE:
            kernel = kernels[step.name]
            kernel.set_args(
                *[buffers[name] for name in step.arrays],
                *[scalars[name] for name in step.scalars],
            )
            spec = specs[step.name]
            global_size = -(-spec.work_items // WORKGROUP_SIZE) * WORKGROUP_SIZE
            queue.enqueue_nd_range_kernel(kernel, global_size, WORKGROUP_SIZE)
            if step.name == "lulesh.qstop_check":
                # The only mid-iteration readback: one scalar.
                queue.enqueue_read_buffer(buffers["q_max"], state.q_max)
                check_qstop(state.q_max)
        # Read back just the two scalar reduction results.
        queue.enqueue_read_buffer(buffers["dt_courant_min"], state.dt_courant_min)
        queue.enqueue_read_buffer(buffers["dt_hydro_min"], state.dt_hydro_min)
        state.time += state.dt
        state.dt = next_dt(state.dt, state.dt_courant_min, state.dt_hydro_min)

    # CopyClDataToHost(): final results only.
    for name in ("e", "v", "xd", "yd", "zd", "x", "y", "z", "p", "q"):
        queue.enqueue_read_buffer(buffers[name], arrays[name])
    seconds = queue.finish()
    return make_result("LULESH", ctx, model_name, seconds, state.checksum())
