"""LULESH physics: simplified Lagrangian shock hydrodynamics.

Solves the spherical Sedov blast problem on a structured hexahedral
mesh with Lagrange hydrodynamics, following the phase structure of
LLNL's LULESH proxy app (Sec. IV-A): advance node quantities (stress
and hourglass forces -> acceleration -> velocity -> position), advance
element quantities (kinematics -> artificial viscosity -> equation of
state -> volume update), then compute the Courant and hydro time
constraints.

The implementation is deliberately decomposed into the paper's
**28 kernels** — each a standalone vectorized function over the state
arrays — so that every programming-model port launches the same kernel
schedule the GPU ports in the paper did.

Simplifications relative to LLNL LULESH (documented in DESIGN.md):
single material/region, parallelepiped volume/face geometry (exact for
the undeformed mesh, first-order for deformed hexes), a viscous
hourglass damper instead of the four-mode stiffness form, and a
simplified monotonic-Q limiter.  The conserved-energy and
shock-propagation behaviour of the Sedov problem is retained and
tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Equation-of-state and algorithm constants (LULESH defaults where
#: applicable).
GAMMA = 5.0 / 3.0
RHO_REF = 1.0
E_ZERO = 3.948746e7  # Sedov energy deposit
CFL = 0.5
HGCOEF = 3.0
QLC = 0.06  # linear artificial-viscosity coefficient
QQC = 2.0  # quadratic artificial-viscosity coefficient
QSTOP = 1.0e12
E_MIN = -1.0e15
P_MIN = 0.0
V_CUT = 1.0e-10
U_CUT = 1.0e-7
DVOVMAX = 0.1
DT_MAX_SCALE = 1.1
DT_COURANT_SCALE = 0.45
DT_HYDRO_SCALE = 0.9
MESH_EDGE = 1.125  # physical edge length of the cube

#: Element-corner offsets in (i, j, k), LULESH node ordering.
CORNERS = (
    (0, 0, 0), (1, 0, 0), (1, 1, 0), (0, 1, 0),
    (0, 0, 1), (1, 0, 1), (1, 1, 1), (0, 1, 1),
)

#: The six element faces: (orientation, axis, 4 corner offsets).
#: ``orientation`` is +1 when the diagonal cross product of the listed
#: corner ordering already points outward on a right-handed mesh, and
#: -1 when it must be flipped (verified analytically per face).
FACES = (
    (+1, 0, ((1, 0, 0), (1, 1, 0), (1, 1, 1), (1, 0, 1))),  # +x
    (-1, 0, ((0, 0, 0), (0, 1, 0), (0, 1, 1), (0, 0, 1))),  # -x
    (-1, 1, ((0, 1, 0), (1, 1, 0), (1, 1, 1), (0, 1, 1))),  # +y
    (+1, 1, ((0, 0, 0), (1, 0, 0), (1, 0, 1), (0, 0, 1))),  # -y
    (+1, 2, ((0, 0, 1), (1, 0, 1), (1, 1, 1), (0, 1, 1))),  # +z
    (-1, 2, ((0, 0, 0), (1, 0, 0), (1, 1, 0), (0, 1, 0))),  # -z
)


class QStopError(RuntimeError):
    """Artificial viscosity exceeded QSTOP (the run went unstable)."""


@dataclass(frozen=True)
class LuleshConfig:
    """Problem definition: ``./LULESH -s <size> -i <iterations>``."""

    size: int  # elements per cube edge (-s)
    iterations: int  # time steps (-i)

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ValueError("mesh must be at least 2 elements per edge")
        if self.iterations < 1:
            raise ValueError("need at least one iteration")

    @property
    def n_elems(self) -> int:
        return self.size**3

    @property
    def n_nodes(self) -> int:
        return (self.size + 1) ** 3

    @property
    def spacing(self) -> float:
        return MESH_EDGE / self.size


def default_config() -> LuleshConfig:
    """CI-sized run (-s 16 -i 8)."""
    return LuleshConfig(size=16, iterations=8)


def paper_config() -> LuleshConfig:
    """Paper-sized run (Table I: ``./LULESH -s 100 -i 100``)."""
    return LuleshConfig(size=100, iterations=100)


@dataclass
class LuleshState:
    """All mesh-resident arrays, named as in LULESH."""

    config: LuleshConfig
    dtype: np.dtype
    # Nodal quantities, shape (s+1, s+1, s+1).
    x: np.ndarray = field(init=False)
    y: np.ndarray = field(init=False)
    z: np.ndarray = field(init=False)
    xd: np.ndarray = field(init=False)
    yd: np.ndarray = field(init=False)
    zd: np.ndarray = field(init=False)
    xdd: np.ndarray = field(init=False)
    ydd: np.ndarray = field(init=False)
    zdd: np.ndarray = field(init=False)
    fx: np.ndarray = field(init=False)
    fy: np.ndarray = field(init=False)
    fz: np.ndarray = field(init=False)
    nodal_mass: np.ndarray = field(init=False)
    # Element quantities, shape (s, s, s).
    e: np.ndarray = field(init=False)
    p: np.ndarray = field(init=False)
    q: np.ndarray = field(init=False)
    v: np.ndarray = field(init=False)
    volo: np.ndarray = field(init=False)
    delv: np.ndarray = field(init=False)
    vdov: np.ndarray = field(init=False)
    arealg: np.ndarray = field(init=False)
    ss: np.ndarray = field(init=False)
    elem_mass: np.ndarray = field(init=False)
    sig: np.ndarray = field(init=False)
    # Scratch element arrays.
    face_normals: np.ndarray = field(init=False)  # (6, 3, s, s, s)
    vel_mean: np.ndarray = field(init=False)  # (3, s, s, s)
    vel_grad: np.ndarray = field(init=False)  # (3, s, s, s)
    compression: np.ndarray = field(init=False)
    e_pred: np.ndarray = field(init=False)
    p_half: np.ndarray = field(init=False)
    dt_courant_elem: np.ndarray = field(init=False)
    dt_hydro_elem: np.ndarray = field(init=False)
    # Scalar reduction results (workgroup tree + atomic on the GPU).
    dt_courant_min: np.ndarray = field(init=False)
    dt_hydro_min: np.ndarray = field(init=False)
    q_max: np.ndarray = field(init=False)
    # Time-integration scalars (host state).
    time: float = 0.0
    dt: float = 0.0

    def __post_init__(self) -> None:
        s = self.config.size
        n = s + 1
        dtype = self.dtype
        h = self.config.spacing

        coords = np.arange(n, dtype=dtype) * dtype.type(h)
        self.x, self.y, self.z = np.meshgrid(coords, coords, coords, indexing="ij")
        self.x = np.ascontiguousarray(self.x)
        self.y = np.ascontiguousarray(self.y)
        self.z = np.ascontiguousarray(self.z)
        for name in ("xd", "yd", "zd", "xdd", "ydd", "zdd", "fx", "fy", "fz"):
            setattr(self, name, np.zeros((n, n, n), dtype=dtype))

        for name in ("e", "p", "q", "delv", "vdov", "ss", "sig", "compression", "e_pred", "p_half"):
            setattr(self, name, np.zeros((s, s, s), dtype=dtype))
        self.v = np.ones((s, s, s), dtype=dtype)
        self.volo = np.full((s, s, s), h**3, dtype=dtype)
        self.arealg = np.full((s, s, s), h, dtype=dtype)
        self.elem_mass = (RHO_REF * self.volo).astype(dtype)
        self.face_normals = np.zeros((6, 3, s, s, s), dtype=dtype)
        self.vel_mean = np.zeros((3, s, s, s), dtype=dtype)
        self.vel_grad = np.zeros((3, s, s, s), dtype=dtype)
        self.dt_courant_elem = np.zeros((s, s, s), dtype=dtype)
        self.dt_hydro_elem = np.zeros((s, s, s), dtype=dtype)
        self.dt_courant_min = np.full(1, np.inf, dtype=dtype)
        self.dt_hydro_min = np.full(1, np.inf, dtype=dtype)
        self.q_max = np.zeros(1, dtype=dtype)

        # Nodal mass: each element contributes 1/8 of its mass per corner.
        self.nodal_mass = np.zeros((n, n, n), dtype=dtype)
        contribution = self.elem_mass / 8.0
        for di, dj, dk in CORNERS:
            self.nodal_mass[di : s + di, dj : s + dj, dk : s + dk] += contribution

        # Sedov initialisation: deposit the blast energy in the origin
        # element (energy density, matching LULESH's e(0) setup).
        self.e[0, 0, 0] = E_ZERO
        initial_pressure = (GAMMA - 1.0) * RHO_REF * E_ZERO
        self.p[0, 0, 0] = initial_pressure
        self.ss[0, 0, 0] = np.sqrt(GAMMA * initial_pressure / RHO_REF)

        # Initial time step from the Courant condition of the hot cell.
        self.dt = float(CFL * h / self.ss[0, 0, 0] * DT_COURANT_SCALE)

    def arrays(self) -> dict[str, np.ndarray]:
        """All state arrays by name (ports wrap these in buffers/views)."""
        names = (
            "x", "y", "z", "xd", "yd", "zd", "xdd", "ydd", "zdd",
            "fx", "fy", "fz", "nodal_mass",
            "e", "p", "q", "v", "volo", "delv", "vdov", "arealg", "ss",
            "elem_mass", "sig", "face_normals", "vel_mean", "vel_grad",
            "compression", "e_pred", "p_half",
            "dt_courant_elem", "dt_hydro_elem",
            "dt_courant_min", "dt_hydro_min", "q_max",
        )
        return {name: getattr(self, name) for name in names}

    def total_energy(self) -> float:
        """Internal + kinetic energy (conserved by the Lagrange step)."""
        internal = float((self.e * self.elem_mass).sum())
        kinetic = 0.5 * float(
            (self.nodal_mass * (self.xd**2 + self.yd**2 + self.zd**2)).sum()
        )
        return internal + kinetic

    def checksum(self) -> float:
        """Scalar used to compare ports: origin energy + mean |v|."""
        return float(self.e[0, 0, 0]) + float(np.abs(self.v).mean()) * 1e3


# ----------------------------------------------------------------------
# Geometry helpers (shared by several kernels).
# ----------------------------------------------------------------------

def _corner(a: np.ndarray, offset: tuple[int, int, int], s: int) -> np.ndarray:
    di, dj, dk = offset
    return a[di : s + di, dj : s + dj, dk : s + dk]


def element_volumes(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Element volumes from the mean-edge parallelepiped determinant."""
    s = x.shape[0] - 1
    edges = []
    for axis in range(3):
        plus = [c for c in CORNERS if c[axis] == 1]
        minus = [c for c in CORNERS if c[axis] == 0]
        comps = []
        for coord in (x, y, z):
            acc = sum(_corner(coord, c, s) for c in plus) - sum(
                _corner(coord, c, s) for c in minus
            )
            comps.append(acc / 4.0)
        edges.append(comps)
    (ax, ay, az), (bx, by, bz), (cx, cy, cz) = edges
    det = (
        ax * (by * cz - bz * cy)
        - ay * (bx * cz - bz * cx)
        + az * (bx * cy - by * cx)
    )
    return det
