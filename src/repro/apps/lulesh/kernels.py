"""LULESH kernel schedule and performance characterizations.

``SCHEDULE`` lists the 28 kernels of one Lagrange iteration in launch
order, with the state arrays each touches (in the kernel function's
parameter order) and the scalars it takes.  Ports iterate this
schedule but wrap the arrays in their model's buffer abstraction.

``kernel_specs`` characterizes each kernel for the timing model.  Op
counts are per-launch formulas in the element/node counts, derived by
counting the array operations of the kernel implementations (the test
suite cross-checks a sample of them against instrumented NumPy runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...engine.kernel import AccessKind, AccessPattern, KernelSpec, OpCount
from ...hardware.specs import Precision
from . import hydro_kernels as hk
from .physics import LuleshConfig


@dataclass(frozen=True)
class Step:
    """One kernel launch of the schedule."""

    name: str
    func: Callable[..., None]
    #: State-array names in the kernel's parameter order.
    arrays: tuple[str, ...]
    #: Subset of ``arrays`` the kernel writes.
    writes: tuple[str, ...]
    #: Host scalars appended after the arrays ("dt" only, currently).
    scalars: tuple[str, ...] = ()


SCHEDULE: tuple[Step, ...] = (
    # --- Lagrange nodal -------------------------------------------------
    Step("lulesh.init_stress", hk.init_stress, ("p", "q", "sig"), ("sig",)),
    Step("lulesh.calc_face_normals", hk.calc_face_normals, ("x", "y", "z", "face_normals"), ("face_normals",)),
    Step("lulesh.stress_force_x", hk.stress_force_x, ("sig", "face_normals", "fx"), ("fx",)),
    Step("lulesh.stress_force_y", hk.stress_force_y, ("sig", "face_normals", "fy"), ("fy",)),
    Step("lulesh.stress_force_z", hk.stress_force_z, ("sig", "face_normals", "fz"), ("fz",)),
    Step("lulesh.hourglass_mean_velocity", hk.hourglass_mean_velocity, ("xd", "yd", "zd", "vel_mean"), ("vel_mean",)),
    Step("lulesh.hourglass_force_x", hk.hourglass_force_x, ("xd", "vel_mean", "ss", "arealg", "elem_mass", "v", "fx"), ("fx",)),
    Step("lulesh.hourglass_force_y", hk.hourglass_force_y, ("yd", "vel_mean", "ss", "arealg", "elem_mass", "v", "fy"), ("fy",)),
    Step("lulesh.hourglass_force_z", hk.hourglass_force_z, ("zd", "vel_mean", "ss", "arealg", "elem_mass", "v", "fz"), ("fz",)),
    Step("lulesh.calc_acceleration", hk.calc_acceleration, ("fx", "fy", "fz", "nodal_mass", "xdd", "ydd", "zdd"), ("xdd", "ydd", "zdd")),
    Step("lulesh.apply_acceleration_bc", hk.apply_acceleration_bc, ("xdd", "ydd", "zdd"), ("xdd", "ydd", "zdd")),
    Step("lulesh.calc_velocity", hk.calc_velocity, ("xd", "yd", "zd", "xdd", "ydd", "zdd"), ("xd", "yd", "zd"), ("dt",)),
    Step("lulesh.calc_position", hk.calc_position, ("x", "y", "z", "xd", "yd", "zd"), ("x", "y", "z"), ("dt",)),
    # --- Lagrange elements ---------------------------------------------
    Step("lulesh.calc_kinematics", hk.calc_kinematics, ("x", "y", "z", "volo", "v", "delv", "arealg"), ("v", "delv", "arealg")),
    Step("lulesh.calc_lagrange_elements", hk.calc_lagrange_elements, ("v", "delv", "vdov"), ("vdov",), ("dt",)),
    Step("lulesh.monotonic_q_gradients", hk.monotonic_q_gradients, ("xd", "yd", "zd", "vel_grad"), ("vel_grad",)),
    Step("lulesh.monotonic_q_region", hk.monotonic_q_region, ("vel_grad", "vdov", "v", "volo", "elem_mass", "arealg", "ss", "q"), ("q",)),
    Step("lulesh.qstop_check", hk.qstop_check, ("q", "q_max"), ("q_max",)),
    Step("lulesh.apply_material_properties", hk.apply_material_properties, ("v",), ("v",)),
    Step("lulesh.eos_compression", hk.eos_compression, ("v", "compression"), ("compression",)),
    Step("lulesh.eos_energy_predict", hk.eos_energy_predict, ("e", "delv", "p", "q", "e_pred"), ("e_pred",)),
    Step("lulesh.eos_pressure_half", hk.eos_pressure_half, ("e_pred", "compression", "p_half"), ("p_half",)),
    Step("lulesh.eos_energy_correct", hk.eos_energy_correct, ("e_pred", "delv", "p_half", "q", "e"), ("e",)),
    Step("lulesh.eos_pressure_final", hk.eos_pressure_final, ("e", "compression", "p"), ("p",)),
    Step("lulesh.eos_sound_speed", hk.eos_sound_speed, ("p", "v", "ss"), ("ss",)),
    Step("lulesh.update_volumes", hk.update_volumes, ("v",), ("v",)),
    # --- time constraints ------------------------------------------------
    Step("lulesh.courant_constraint", hk.courant_constraint, ("ss", "vdov", "arealg", "dt_courant_elem", "dt_courant_min"), ("dt_courant_elem", "dt_courant_min")),
    Step("lulesh.hydro_constraint", hk.hydro_constraint, ("vdov", "dt_hydro_elem", "dt_hydro_min"), ("dt_hydro_elem", "dt_hydro_min")),
)

#: name -> Step, for ports that address kernels individually.
STEPS_BY_NAME = {step.name: step for step in SCHEDULE}

#: (flops_per_item, reads_per_item, writes_per_item, instructions_per_item,
#:  kind, reuse, registers, divergence, unroll, cpu_simd) per kernel.
#: "item" is one element (or node for nodal kernels).
_CHARACTERIZATION: dict[str, tuple] = {
    "lulesh.init_stress": (1, 2, 1, 5, AccessKind.STREAMING, 0.0, 16, 0.0, 0.0, 0.95),
    "lulesh.calc_face_normals": (160, 24, 18, 280, AccessKind.STENCIL, 0.82, 84, 0.02, 0.25, 0.75),
    "lulesh.stress_force_x": (30, 15, 8, 70, AccessKind.STENCIL, 0.8, 40, 0.03, 0.2, 0.7),
    "lulesh.stress_force_y": (30, 15, 8, 70, AccessKind.STENCIL, 0.8, 40, 0.03, 0.2, 0.7),
    "lulesh.stress_force_z": (30, 15, 8, 70, AccessKind.STENCIL, 0.8, 40, 0.03, 0.2, 0.7),
    "lulesh.hourglass_mean_velocity": (27, 24, 3, 60, AccessKind.STENCIL, 0.85, 32, 0.0, 0.2, 0.8),
    "lulesh.hourglass_force_x": (30, 13, 8, 70, AccessKind.STENCIL, 0.8, 48, 0.03, 0.2, 0.7),
    "lulesh.hourglass_force_y": (30, 13, 8, 70, AccessKind.STENCIL, 0.8, 48, 0.03, 0.2, 0.7),
    "lulesh.hourglass_force_z": (30, 13, 8, 70, AccessKind.STENCIL, 0.8, 48, 0.03, 0.2, 0.7),
    "lulesh.calc_acceleration": (3, 4, 3, 14, AccessKind.STREAMING, 0.0, 16, 0.0, 0.0, 0.95),
    "lulesh.apply_acceleration_bc": (0, 0.2, 0.2, 2, AccessKind.STREAMING, 0.0, 8, 0.0, 0.0, 0.9),
    "lulesh.calc_velocity": (6, 6, 3, 22, AccessKind.STREAMING, 0.0, 16, 0.05, 0.0, 0.9),
    "lulesh.calc_position": (6, 6, 3, 18, AccessKind.STREAMING, 0.0, 16, 0.0, 0.0, 0.95),
    "lulesh.calc_kinematics": (95, 26, 3, 210, AccessKind.STENCIL, 0.82, 72, 0.02, 0.25, 0.75),
    "lulesh.calc_lagrange_elements": (3, 2, 1, 9, AccessKind.STREAMING, 0.0, 12, 0.0, 0.0, 0.95),
    "lulesh.monotonic_q_gradients": (30, 24, 3, 70, AccessKind.STENCIL, 0.85, 36, 0.0, 0.2, 0.8),
    "lulesh.monotonic_q_region": (24, 8, 1, 55, AccessKind.STREAMING, 0.0, 28, 0.08, 0.1, 0.8),
    "lulesh.qstop_check": (1, 1, 1, 4, AccessKind.STREAMING, 0.0, 8, 0.0, 0.0, 1.0),
    "lulesh.apply_material_properties": (2, 1, 1, 5, AccessKind.STREAMING, 0.0, 8, 0.0, 0.0, 0.95),
    "lulesh.eos_compression": (2, 1, 1, 6, AccessKind.STREAMING, 0.0, 8, 0.0, 0.0, 0.95),
    "lulesh.eos_energy_predict": (5, 4, 1, 13, AccessKind.STREAMING, 0.0, 12, 0.02, 0.0, 0.9),
    "lulesh.eos_pressure_half": (4, 2, 1, 10, AccessKind.STREAMING, 0.0, 10, 0.02, 0.0, 0.9),
    "lulesh.eos_energy_correct": (5, 4, 1, 13, AccessKind.STREAMING, 0.0, 12, 0.02, 0.0, 0.9),
    "lulesh.eos_pressure_final": (4, 2, 1, 10, AccessKind.STREAMING, 0.0, 10, 0.02, 0.0, 0.9),
    "lulesh.eos_sound_speed": (6, 2, 1, 14, AccessKind.STREAMING, 0.0, 12, 0.0, 0.0, 0.9),
    "lulesh.update_volumes": (2, 1, 1, 5, AccessKind.STREAMING, 0.0, 8, 0.02, 0.0, 0.9),
    "lulesh.courant_constraint": (10, 3, 1, 22, AccessKind.STREAMING, 0.0, 14, 0.04, 0.0, 0.85),
    "lulesh.hydro_constraint": (4, 1, 1, 10, AccessKind.STREAMING, 0.0, 10, 0.04, 0.0, 0.85),
}

#: Kernels whose work-items are nodes rather than elements.
_NODAL_KERNELS = frozenset(
    {
        "lulesh.calc_acceleration",
        "lulesh.apply_acceleration_bc",
        "lulesh.calc_velocity",
        "lulesh.calc_position",
    }
)


def kernel_specs(config: LuleshConfig, precision: Precision) -> dict[str, KernelSpec]:
    """Characterize all 28 kernels for one problem size and precision."""
    ebytes = precision.bytes_per_element
    n_elems = config.n_elems
    n_nodes = config.n_nodes
    specs: dict[str, KernelSpec] = {}
    for name, char in _CHARACTERIZATION.items():
        (flops, reads, writes, instr, kind, reuse, regs, div, unroll, simd) = char
        items = n_nodes if name in _NODAL_KERNELS else n_elems
        working_set = (reads + writes) * items * ebytes
        specs[name] = KernelSpec(
            name=name,
            work_items=items,
            ops=OpCount(
                flops=float(flops * items),
                int_ops=float(3 * items),
                bytes_read=float(reads * items * ebytes),
                bytes_written=float(writes * items * ebytes),
            ),
            access=AccessPattern(
                kind=kind,
                working_set_bytes=max(float(working_set), 64.0),
                request_bytes=ebytes,
                reuse_fraction=reuse,
                row_buffer_efficiency=0.95 if kind is AccessKind.STREAMING else 0.85,
            ),
            workgroup_size=128,
            instructions_per_item=float(instr),
            registers_per_thread=regs,
            divergence=div,
            unroll_benefit=unroll,
            cpu_simd_fraction=simd,
        )
    return specs
