"""The 28 LULESH kernels.

Each function is one GPU kernel of the paper's LULESH port ("LULESH
contains a large number of parallel loops resulting in 28 different
kernels", Sec. IV-A).  All functions are pure array transforms over the
state arrays of :class:`~repro.apps.lulesh.physics.LuleshState`; ports
route them through their programming-model API.

Kernel schedule per iteration (names used throughout the ports):

Lagrange nodal (13): init_stress, calc_face_normals, stress_force_x/y/z,
hourglass_mean_velocity, hourglass_force_x/y/z, calc_acceleration,
apply_acceleration_bc, calc_velocity, calc_position.

Lagrange elements (13): calc_kinematics, calc_lagrange_elements,
monotonic_q_gradients, monotonic_q_region, qstop_check,
apply_material_properties, eos_compression, eos_energy_predict,
eos_pressure_half, eos_energy_correct, eos_pressure_final,
eos_sound_speed, update_volumes.

Time constraints (2): courant_constraint, hydro_constraint.
"""

from __future__ import annotations

import numpy as np

from .physics import (
    CFL,
    CORNERS,
    DVOVMAX,
    E_MIN,
    FACES,
    GAMMA,
    HGCOEF,
    P_MIN,
    QLC,
    QQC,
    U_CUT,
    V_CUT,
    _corner,
    element_volumes,
)

# ----------------------------------------------------------------------
# Lagrange nodal phase
# ----------------------------------------------------------------------


def init_stress(p: np.ndarray, q: np.ndarray, sig: np.ndarray) -> None:
    """Kernel 1: total element stress magnitude sigma = p + q."""
    np.add(p, q, out=sig)


def calc_face_normals(x: np.ndarray, y: np.ndarray, z: np.ndarray, face_normals: np.ndarray) -> None:
    """Kernel 2: outward area vectors of all six element faces.

    Each face's area vector is half the cross product of its diagonals
    (exact for planar quads).
    """
    s = x.shape[0] - 1
    for f, (orientation, _axis, corners) in enumerate(FACES):
        c0, c1, c2, c3 = corners
        d1 = [_corner(w, c2, s) - _corner(w, c0, s) for w in (x, y, z)]
        d2 = [_corner(w, c3, s) - _corner(w, c1, s) for w in (x, y, z)]
        half = 0.5 * orientation
        face_normals[f, 0] = half * (d1[1] * d2[2] - d1[2] * d2[1])
        face_normals[f, 1] = half * (d1[2] * d2[0] - d1[0] * d2[2])
        face_normals[f, 2] = half * (d1[0] * d2[1] - d1[1] * d2[0])


def _scatter_face_force(sig: np.ndarray, face_normals: np.ndarray, force: np.ndarray, axis: int) -> None:
    s = sig.shape[0]
    force[:] = 0.0
    for f, (_sign, _faxis, corners) in enumerate(FACES):
        contribution = 0.25 * sig * face_normals[f, axis]
        for c in corners:
            force[c[0] : s + c[0], c[1] : s + c[1], c[2] : s + c[2]] += contribution


def stress_force_x(sig: np.ndarray, face_normals: np.ndarray, fx: np.ndarray) -> None:
    """Kernel 3: integrate stress over faces, scatter x-forces to nodes."""
    _scatter_face_force(sig, face_normals, fx, 0)


def stress_force_y(sig: np.ndarray, face_normals: np.ndarray, fy: np.ndarray) -> None:
    """Kernel 4: y-component of the stress force."""
    _scatter_face_force(sig, face_normals, fy, 1)


def stress_force_z(sig: np.ndarray, face_normals: np.ndarray, fz: np.ndarray) -> None:
    """Kernel 5: z-component of the stress force."""
    _scatter_face_force(sig, face_normals, fz, 2)


def hourglass_mean_velocity(xd: np.ndarray, yd: np.ndarray, zd: np.ndarray, vel_mean: np.ndarray) -> None:
    """Kernel 6: element-mean velocity (the linear field the hourglass
    damper preserves)."""
    s = xd.shape[0] - 1
    for axis, vel in enumerate((xd, yd, zd)):
        acc = sum(_corner(vel, c, s) for c in CORNERS)
        vel_mean[axis] = acc / 8.0


def _scatter_hourglass_force(
    vel: np.ndarray,
    vel_mean_axis: np.ndarray,
    ss: np.ndarray,
    arealg: np.ndarray,
    elem_mass: np.ndarray,
    v: np.ndarray,
    force: np.ndarray,
) -> None:
    s = vel.shape[0] - 1
    # Viscous hourglass damping: c = hgcoef * rho * ss * L^2, applied to
    # each corner's deviation from the element-mean velocity.
    rho = elem_mass / np.maximum(v * (arealg**3), 1e-30)
    damping = HGCOEF * 0.01 * rho * np.maximum(ss, 1e-30) * arealg**2
    for c in CORNERS:
        deviation = _corner(vel, c, s) - vel_mean_axis
        force[c[0] : s + c[0], c[1] : s + c[1], c[2] : s + c[2]] -= damping * deviation


def hourglass_force_x(
    xd: np.ndarray, vel_mean: np.ndarray, ss: np.ndarray, arealg: np.ndarray,
    elem_mass: np.ndarray, v: np.ndarray, fx: np.ndarray,
) -> None:
    """Kernel 7: hourglass damping force, x-component."""
    _scatter_hourglass_force(xd, vel_mean[0], ss, arealg, elem_mass, v, fx)


def hourglass_force_y(
    yd: np.ndarray, vel_mean: np.ndarray, ss: np.ndarray, arealg: np.ndarray,
    elem_mass: np.ndarray, v: np.ndarray, fy: np.ndarray,
) -> None:
    """Kernel 8: hourglass damping force, y-component."""
    _scatter_hourglass_force(yd, vel_mean[1], ss, arealg, elem_mass, v, fy)


def hourglass_force_z(
    zd: np.ndarray, vel_mean: np.ndarray, ss: np.ndarray, arealg: np.ndarray,
    elem_mass: np.ndarray, v: np.ndarray, fz: np.ndarray,
) -> None:
    """Kernel 9: hourglass damping force, z-component."""
    _scatter_hourglass_force(zd, vel_mean[2], ss, arealg, elem_mass, v, fz)


def calc_acceleration(
    fx: np.ndarray, fy: np.ndarray, fz: np.ndarray, nodal_mass: np.ndarray,
    xdd: np.ndarray, ydd: np.ndarray, zdd: np.ndarray,
) -> None:
    """Kernel 10: a = F / m at every node."""
    np.divide(fx, nodal_mass, out=xdd)
    np.divide(fy, nodal_mass, out=ydd)
    np.divide(fz, nodal_mass, out=zdd)


def apply_acceleration_bc(xdd: np.ndarray, ydd: np.ndarray, zdd: np.ndarray) -> None:
    """Kernel 11: symmetry boundary conditions on the origin planes."""
    xdd[0, :, :] = 0.0
    ydd[:, 0, :] = 0.0
    zdd[:, :, 0] = 0.0


def calc_velocity(
    xd: np.ndarray, yd: np.ndarray, zd: np.ndarray,
    xdd: np.ndarray, ydd: np.ndarray, zdd: np.ndarray, dt: float,
) -> None:
    """Kernel 12: v += a*dt, with tiny velocities snapped to zero."""
    for vel, acc in ((xd, xdd), (yd, ydd), (zd, zdd)):
        vel += acc * dt
        vel[np.abs(vel) < U_CUT] = 0.0


def calc_position(
    x: np.ndarray, y: np.ndarray, z: np.ndarray,
    xd: np.ndarray, yd: np.ndarray, zd: np.ndarray, dt: float,
) -> None:
    """Kernel 13: x += v*dt (the Lagrangian mesh moves)."""
    x += xd * dt
    y += yd * dt
    z += zd * dt


# ----------------------------------------------------------------------
# Lagrange element phase
# ----------------------------------------------------------------------


def calc_kinematics(
    x: np.ndarray, y: np.ndarray, z: np.ndarray,
    volo: np.ndarray, v: np.ndarray, delv: np.ndarray, arealg: np.ndarray,
) -> None:
    """Kernel 14: new relative volumes, volume change, characteristic
    length.  (The kernel CLAMP v0.6.0 could not compile for the dGPU.)"""
    vnew = element_volumes(x, y, z) / volo
    np.subtract(vnew, v, out=delv)
    v[:] = vnew
    np.cbrt(v * volo, out=arealg)


def calc_lagrange_elements(v: np.ndarray, delv: np.ndarray, vdov: np.ndarray, dt: float) -> None:
    """Kernel 15: volumetric strain rate vdov = (dV/dt)/V."""
    np.divide(delv, np.maximum(v, 1e-30) * dt, out=vdov)


def monotonic_q_gradients(xd: np.ndarray, yd: np.ndarray, zd: np.ndarray, vel_grad: np.ndarray) -> None:
    """Kernel 16: principal velocity gradients per element."""
    s = xd.shape[0] - 1
    for axis, vel in enumerate((xd, yd, zd)):
        plus = [c for c in CORNERS if c[axis] == 1]
        minus = [c for c in CORNERS if c[axis] == 0]
        diff = sum(_corner(vel, c, s) for c in plus) - sum(_corner(vel, c, s) for c in minus)
        vel_grad[axis] = diff / 4.0


def monotonic_q_region(
    vel_grad: np.ndarray, vdov: np.ndarray, v: np.ndarray, volo: np.ndarray,
    elem_mass: np.ndarray, arealg: np.ndarray, ss: np.ndarray, q: np.ndarray,
) -> None:
    """Kernel 17: artificial viscosity for compressing elements.

    von Neumann-Richtmyer form: q = rho*(qqc*du^2 + qlc*c*|du|), with
    du the compressive velocity jump across the element.  A full
    monotonic limiter is replaced by compression gating (simplified;
    see DESIGN.md).
    """
    rho = elem_mass / np.maximum(v * volo, 1e-30)
    du = np.minimum(vdov, 0.0) * arealg  # compressive velocity scale
    q[:] = rho * (QQC * du * du + QLC * ss * np.abs(du))
    q[vdov >= 0.0] = 0.0
    # vel_grad participates as the (simplified) limiter input: elements
    # with strongly anisotropic gradients get reduced linear q.
    anisotropy = np.abs(vel_grad).max(axis=0) - np.abs(vel_grad).min(axis=0)
    scale = np.abs(vel_grad).max(axis=0) + 1e-30
    limiter = np.clip(1.0 - 0.5 * anisotropy / scale, 0.5, 1.0)
    q *= limiter


def qstop_check(q: np.ndarray, q_max: np.ndarray) -> None:
    """Kernel 18: parallel max-reduction of q (host tests against
    QSTOP).  On the GPU this is a workgroup tree reduction plus one
    atomic; only the scalar crosses back to the host."""
    q_max[0] = q.max()


def apply_material_properties(v: np.ndarray) -> None:
    """Kernel 19: clamp relative volumes to the material's EOS range.

    LULESH ships with eosvmin/eosvmax effectively disabled; the very
    wide range here only guards against numerical blow-up.
    """
    np.clip(v, 1e-4, 1e4, out=v)


def eos_compression(v: np.ndarray, compression: np.ndarray) -> None:
    """Kernel 20: compression = 1/v - 1."""
    np.divide(1.0, np.maximum(v, 1e-30), out=compression)
    compression -= 1.0


def eos_energy_predict(
    e: np.ndarray, delv: np.ndarray, p: np.ndarray, q: np.ndarray, e_pred: np.ndarray
) -> None:
    """Kernel 21: half-step energy from pdV work of the old stress."""
    e_pred[:] = e - 0.5 * delv * (p + q)
    np.maximum(e_pred, E_MIN, out=e_pred)


def eos_pressure_half(e_pred: np.ndarray, compression: np.ndarray, p_half: np.ndarray) -> None:
    """Kernel 22: half-step pressure p = (gamma-1)*(1+mu)*e."""
    p_half[:] = (GAMMA - 1.0) * (1.0 + compression) * e_pred
    np.maximum(p_half, P_MIN, out=p_half)


def eos_energy_correct(
    e_pred: np.ndarray, delv: np.ndarray, p_half: np.ndarray, q: np.ndarray, e: np.ndarray
) -> None:
    """Kernel 23: corrected energy using the half-step pressure.

    Second half of the trapezoidal pdV work: the predictor already
    applied -delv/2*(p_old+q_old); adding -delv/2*(p_half+q_new)
    completes a second-order estimate of the work integral.
    """
    e[:] = e_pred - 0.5 * delv * (p_half + q)
    np.maximum(e, E_MIN, out=e)


def eos_pressure_final(e: np.ndarray, compression: np.ndarray, p: np.ndarray) -> None:
    """Kernel 24: end-of-step pressure from the corrected energy."""
    p[:] = (GAMMA - 1.0) * (1.0 + compression) * e
    np.maximum(p, P_MIN, out=p)


def eos_sound_speed(p: np.ndarray, v: np.ndarray, ss: np.ndarray) -> None:
    """Kernel 25: sound speed c^2 = gamma * p * v / rho_ref."""
    np.sqrt(np.maximum(GAMMA * p * v, 1e-30), out=ss)


def update_volumes(v: np.ndarray) -> None:
    """Kernel 26: snap volumes within v_cut of 1 back to exactly 1."""
    v[np.abs(v - 1.0) < V_CUT] = 1.0


# ----------------------------------------------------------------------
# Time constraints
# ----------------------------------------------------------------------


def courant_constraint(
    ss: np.ndarray, vdov: np.ndarray, arealg: np.ndarray,
    dt_courant_elem: np.ndarray, dt_courant_min: np.ndarray,
) -> None:
    """Kernel 27: per-element Courant limit CFL*L/(c + compressive
    term), reduced to a scalar minimum on the device."""
    denom = np.sqrt(ss * ss + (QQC * arealg * np.minimum(vdov, 0.0)) ** 2)
    with np.errstate(divide="ignore"):
        dt_courant_elem[:] = np.where(denom > 1e-30, CFL * arealg / np.maximum(denom, 1e-30), np.inf)
    dt_courant_min[0] = dt_courant_elem.min()


def hydro_constraint(
    vdov: np.ndarray, dt_hydro_elem: np.ndarray, dt_hydro_min: np.ndarray
) -> None:
    """Kernel 28: per-element hydro limit dvovmax/|vdov|, reduced to a
    scalar minimum on the device."""
    magnitude = np.abs(vdov)
    with np.errstate(divide="ignore"):
        dt_hydro_elem[:] = np.where(magnitude > 1e-30, DVOVMAX / np.maximum(magnitude, 1e-30), np.inf)
    dt_hydro_min[0] = dt_hydro_elem.min()
