"""LULESH shock-hydrodynamics proxy application (Sec. IV-A).

Solves the spherical Sedov blast problem with Lagrange hydrodynamics
on a structured hexahedral mesh, decomposed into the paper's 28 GPU
kernels.  Balanced boundedness: performance scales with both core and
memory frequency (Figure 7b).
"""

from ..base import ProxyApp
from . import (
    port_cppamp,
    port_hc,
    port_omp_offload,
    port_openacc,
    port_opencl,
    port_openmp,
    port_serial,
)
from .kernels import SCHEDULE, STEPS_BY_NAME, kernel_specs
from .physics import LuleshConfig, LuleshState, QStopError, default_config, paper_config
from .reference import make_state, run_iteration, run_reference

APP = ProxyApp(
    name="LULESH",
    description="Sedov blast via Lagrange hydrodynamics, 28 kernels (Sec. IV-A)",
    command_line="./LULESH -s 100 -i 100",
    n_kernels=28,
    boundedness="Balanced",
    default_config=default_config,
    paper_config=paper_config,
    ports={
        port_serial.model_name: port_serial.run,
        port_openmp.model_name: port_openmp.run,
        port_opencl.model_name: port_opencl.run,
        port_cppamp.model_name: port_cppamp.run,
        port_openacc.model_name: port_openacc.run,
        port_omp_offload.model_name: port_omp_offload.run,
        port_hc.model_name: port_hc.run,
    },
)

__all__ = [
    "APP",
    "LuleshConfig",
    "LuleshState",
    "QStopError",
    "SCHEDULE",
    "STEPS_BY_NAME",
    "default_config",
    "kernel_specs",
    "make_state",
    "paper_config",
    "run_iteration",
    "run_reference",
]
