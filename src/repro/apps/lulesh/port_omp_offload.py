"""LULESH: OpenMP target-offload port.

A single ``#pragma omp target data map(tofrom: <mesh state>)`` region
wraps the time loop, with ``target update from`` for the per-iteration
constraint reductions.  Each of the 28 loop nests is a ``target teams
distribute parallel for``.
"""

from __future__ import annotations

from ...models.base import ExecutionContext
from ...models.omp_offload import OpenMPOffload
from ..base import RunResult, make_result
from .kernels import SCHEDULE, kernel_specs
from .physics import LuleshConfig
from .reference import check_qstop, make_state, next_dt

model_name = "OpenMP Offload"

THREAD_LIMIT = 128


def run(ctx: ExecutionContext, config: LuleshConfig) -> RunResult:
    state = make_state(config, ctx.precision)
    specs = kernel_specs(config, ctx.precision)
    arrays = state.arrays()

    omp = OpenMPOffload(ctx)
    all_arrays = list(arrays.values())
    # #pragma omp target data map(tofrom: <entire mesh state>)
    with omp.target_data(tofrom=all_arrays):
        for _ in range(config.iterations):
            scalars = {"dt": state.dt}
            for step in SCHEDULE:
                spec = specs[step.name]
                # #pragma omp target teams distribute parallel for \
                #     thread_limit(THREAD_LIMIT)
                omp.target_teams_loop(
                    step.func,
                    spec,
                    arrays=[arrays[name] for name in step.arrays],
                    scalars=[scalars[name] for name in step.scalars],
                    writes=[arrays[name] for name in step.writes],
                    num_teams=-(-spec.work_items // THREAD_LIMIT),
                    thread_limit=THREAD_LIMIT,
                )
                if step.name == "lulesh.qstop_check":
                    # #pragma omp target update from(q_max)
                    omp.update_from(state.q_max)
                    check_qstop(state.q_max)
            # #pragma omp target update from(dt_courant_min, dt_hydro_min)
            omp.update_from(state.dt_courant_min)
            omp.update_from(state.dt_hydro_min)
            state.time += state.dt
            state.dt = next_dt(state.dt, state.dt_courant_min, state.dt_hydro_min)
    return make_result("LULESH", ctx, model_name, omp.simulated_seconds, state.checksum())
