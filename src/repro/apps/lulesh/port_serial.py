"""LULESH: serial CPU port."""

from __future__ import annotations

from ...models.base import ExecutionContext
from ...models.serial import SerialCPU
from ..base import RunResult, make_result
from .kernels import SCHEDULE, kernel_specs
from .physics import LuleshConfig
from .reference import check_qstop, make_state, next_dt

model_name = "Serial"


def run(ctx: ExecutionContext, config: LuleshConfig) -> RunResult:
    state = make_state(config, ctx.precision)
    specs = kernel_specs(config, ctx.precision)
    arrays = state.arrays()

    cpu = SerialCPU(ctx)
    for _ in range(config.iterations):
        scalars = {"dt": state.dt}
        for step in SCHEDULE:
            cpu.run_loop(
                step.func,
                specs[step.name],
                arrays=[arrays[name] for name in step.arrays],
                scalars=[scalars[name] for name in step.scalars],
            )
            if step.name == "lulesh.qstop_check":
                check_qstop(state.q_max)
        state.time += state.dt
        state.dt = next_dt(state.dt, state.dt_courant_min, state.dt_hydro_min)
    return make_result("LULESH", ctx, model_name, cpu.simulated_seconds, state.checksum())
