"""LULESH: OpenMP CPU port.

One ``#pragma omp parallel for`` on each of the 28 loop nests — the
107 changed lines of Table IV (a pragma per kernel plus reduction
clauses for the constraint minima).
"""

from __future__ import annotations

from ...models.base import ExecutionContext
from ...models.openmp import OpenMP
from ..base import RunResult, make_result
from .kernels import SCHEDULE, kernel_specs
from .physics import LuleshConfig
from .reference import check_qstop, make_state, next_dt

model_name = "OpenMP"


def run(ctx: ExecutionContext, config: LuleshConfig) -> RunResult:
    state = make_state(config, ctx.precision)
    specs = kernel_specs(config, ctx.precision)
    arrays = state.arrays()

    omp = OpenMP(ctx, num_threads=4)
    for _ in range(config.iterations):
        scalars = {"dt": state.dt}
        for step in SCHEDULE:
            # #pragma omp parallel for
            omp.parallel_for(
                step.func,
                specs[step.name],
                arrays=[arrays[name] for name in step.arrays],
                scalars=[scalars[name] for name in step.scalars],
            )
            if step.name == "lulesh.qstop_check":
                check_qstop(state.q_max)
        state.time += state.dt
        state.dt = next_dt(state.dt, state.dt_courant_min, state.dt_hydro_min)
    return make_result("LULESH", ctx, model_name, omp.simulated_seconds, state.checksum())
