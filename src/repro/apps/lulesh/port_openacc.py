"""LULESH: OpenACC port.

A single ``#pragma acc data`` region wraps the time loop (the paper's
Sec. III-B notes the ``data`` directive "is particularly useful on
discrete GPUs"), with ``update host`` for the per-iteration constraint
reductions.  Each of the 28 loop nests is a ``kernels loop``.
"""

from __future__ import annotations

from ...models.base import ExecutionContext
from ...models.openacc import OpenACC
from ..base import RunResult, make_result
from .kernels import SCHEDULE, kernel_specs
from .physics import LuleshConfig
from .reference import check_qstop, make_state, next_dt

model_name = "OpenACC"

VECTOR_LENGTH = 128


def run(ctx: ExecutionContext, config: LuleshConfig) -> RunResult:
    state = make_state(config, ctx.precision)
    specs = kernel_specs(config, ctx.precision)
    arrays = state.arrays()

    acc = OpenACC(ctx)
    all_arrays = list(arrays.values())
    # #pragma acc data copy(<entire mesh state>)
    with acc.data(copy=all_arrays):
        for _ in range(config.iterations):
            scalars = {"dt": state.dt}
            for step in SCHEDULE:
                spec = specs[step.name]
                # #pragma acc kernels loop gang vector(VECTOR_LENGTH)
                acc.kernels_loop(
                    step.func,
                    spec,
                    arrays=[arrays[name] for name in step.arrays],
                    scalars=[scalars[name] for name in step.scalars],
                    writes=[arrays[name] for name in step.writes],
                    gang=-(-spec.work_items // VECTOR_LENGTH),
                    vector=VECTOR_LENGTH,
                )
                if step.name == "lulesh.qstop_check":
                    # #pragma acc update host(q_max)
                    acc.update_host(state.q_max)
                    check_qstop(state.q_max)
            # #pragma acc update host(dt_courant_min, dt_hydro_min)
            acc.update_host(state.dt_courant_min)
            acc.update_host(state.dt_hydro_min)
            state.time += state.dt
            state.dt = next_dt(state.dt, state.dt_courant_min, state.dt_hydro_min)
    return make_result("LULESH", ctx, model_name, acc.simulated_seconds, state.checksum())
