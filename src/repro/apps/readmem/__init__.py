"""read-memory micro-benchmark (Section III).

Streams a buffer, summing blocks of 64 contiguous elements.  The paper
uses it to isolate the quality of each compiler's generated device
code: with transfers excluded, OpenCL beats C++ AMP by 1.3x and
OpenACC by 2x on both platforms.
"""

from ..base import ProxyApp
from . import (
    port_cppamp,
    port_hc,
    port_omp_offload,
    port_openacc,
    port_opencl,
    port_openmp,
    port_serial,
)
from .kernels import read_gpu_kernel, read_kernel_spec
from .reference import (
    BLOCK_SIZE,
    ReadMemConfig,
    default_config,
    make_input,
    paper_config,
    read_serial_cpu,
    reference_checksum,
)

APP = ProxyApp(
    name="read-benchmark",
    description="streams memory summing 64-element blocks (Sec. III)",
    command_line="./read-benchmark",
    n_kernels=1,
    boundedness="Memory",
    default_config=default_config,
    paper_config=paper_config,
    ports={
        port_serial.model_name: port_serial.run,
        port_openmp.model_name: port_openmp.run,
        port_opencl.model_name: port_opencl.run,
        port_cppamp.model_name: port_cppamp.run,
        port_openacc.model_name: port_openacc.run,
        port_omp_offload.model_name: port_omp_offload.run,
        port_hc.model_name: port_hc.run,
    },
)

__all__ = [
    "APP",
    "BLOCK_SIZE",
    "ReadMemConfig",
    "default_config",
    "make_input",
    "paper_config",
    "read_gpu_kernel",
    "read_kernel_spec",
    "read_serial_cpu",
    "reference_checksum",
]
