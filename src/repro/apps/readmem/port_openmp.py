"""read-memory: OpenMP CPU port (Figure 3b).

One ``#pragma omp parallel for`` around the serial loop — the 3-line
change of Table IV.
"""

from __future__ import annotations

import numpy as np

from ...models.base import ExecutionContext
from ...models.openmp import OpenMP
from ..base import RunResult, make_result
from .kernels import read_kernel_spec
from .reference import ReadMemConfig, make_input, read_serial_cpu

model_name = "OpenMP"


def run(ctx: ExecutionContext, config: ReadMemConfig) -> RunResult:
    data = make_input(config, ctx.precision)
    out = np.zeros(config.n_blocks, dtype=ctx.dtype)

    omp = OpenMP(ctx, num_threads=4)
    # #pragma omp parallel for
    omp.parallel_for(
        read_serial_cpu,
        read_kernel_spec(config, ctx.precision),
        arrays=[data, out],
        scalars=[config.block_size],
    )
    return make_result("read-benchmark", ctx, model_name, omp.simulated_seconds, out.sum())
