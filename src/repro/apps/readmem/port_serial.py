"""read-memory: serial CPU port (Figure 3a)."""

from __future__ import annotations

import numpy as np

from ...models.base import ExecutionContext
from ...models.serial import SerialCPU
from ..base import RunResult, make_result
from .kernels import read_kernel_spec
from .reference import ReadMemConfig, make_input, read_serial_cpu

model_name = "Serial"


def run(ctx: ExecutionContext, config: ReadMemConfig) -> RunResult:
    data = make_input(config, ctx.precision)
    out = np.zeros(config.n_blocks, dtype=ctx.dtype)

    cpu = SerialCPU(ctx)
    cpu.run_loop(
        read_serial_cpu,
        read_kernel_spec(config, ctx.precision),
        arrays=[data, out],
        scalars=[config.block_size],
    )
    return make_result("read-benchmark", ctx, model_name, cpu.simulated_seconds, out.sum())
