"""Read-memory micro-benchmark: reference serial implementation.

Section III: "The read-memory benchmark streams through a region of
memory and computes the sum of a block of continuous elements.  The
block size of 64 is used for our experiments.  The computed sum is
then written to an output buffer to ensure that the compiler does not
optimize out the code."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...engine.memo import memoized_setup, projection_stub
from ...hardware.specs import Precision

BLOCK_SIZE = 64


@dataclass(frozen=True)
class ReadMemConfig:
    """Problem size of the read-memory benchmark."""

    size: int  # number of input elements
    block_size: int = BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.size <= 0 or self.size % self.block_size != 0:
            raise ValueError(
                f"size {self.size} must be a positive multiple of the "
                f"block size {self.block_size}"
            )

    @property
    def n_blocks(self) -> int:
        return self.size // self.block_size


def default_config() -> ReadMemConfig:
    """CI-sized run: 1 Mi elements (4 MiB single precision)."""
    return ReadMemConfig(size=1 << 20)


def paper_config() -> ReadMemConfig:
    """Paper-sized run: 64 Mi elements (256 MiB single precision)."""
    return ReadMemConfig(size=1 << 26)


@memoized_setup
def make_input(config: ReadMemConfig, precision: Precision, seed: int = 7) -> np.ndarray:
    """Deterministic input stream."""
    dtype = np.float32 if precision is Precision.SINGLE else np.float64
    rng = np.random.default_rng(seed)
    return rng.random(config.size).astype(dtype)


@projection_stub(make_input)
def _projection_input(config: ReadMemConfig, precision: Precision, seed: int = 7) -> np.ndarray:
    """Shape-faithful stand-in for schedule capture: the ports derive
    buffer sizes and kernel specs from the array's shape/dtype only."""
    dtype = np.float32 if precision is Precision.SINGLE else np.float64
    return np.zeros(config.size, dtype=dtype)


def read_serial_cpu(data: np.ndarray, out: np.ndarray, block_size: int = BLOCK_SIZE) -> None:
    """Figure 3a: stream through ``data`` summing blocks of 64."""
    out[:] = data.reshape(-1, block_size).sum(axis=1)


def reference_checksum(data: np.ndarray, config: ReadMemConfig) -> float:
    """Oracle checksum every port must reproduce."""
    out = np.zeros(config.n_blocks, dtype=data.dtype)
    read_serial_cpu(data, out, config.block_size)
    return float(out.sum())
