"""Read-memory device kernel and its performance characterization."""

from __future__ import annotations

import numpy as np

from ...engine.kernel import AccessKind, AccessPattern, KernelSpec, OpCount
from ...hardware.specs import Precision
from .reference import ReadMemConfig


def read_gpu_kernel(data: np.ndarray, out: np.ndarray, block_size: int) -> None:
    """Figure 4b: each thread sums one block of 64 contiguous elements."""
    out[:] = data.reshape(-1, block_size).sum(axis=1)


def read_kernel_spec(config: ReadMemConfig, precision: Precision) -> KernelSpec:
    """Characterize the read kernel for the timing model.

    Per output element: ``block_size`` loads, ``block_size - 1`` adds
    and one store.  The stream is perfectly coalesced and touched once,
    making the kernel purely bandwidth-bound (Figure 7a) — which is
    exactly why the paper uses it to isolate code-generation quality.
    """
    ebytes = precision.bytes_per_element
    n = config.size
    return KernelSpec(
        name="readmem.block_sum",
        work_items=config.n_blocks,
        ops=OpCount(
            flops=float(n - config.n_blocks),
            int_ops=2.0 * config.n_blocks,
            bytes_read=float(n * ebytes),
            bytes_written=float(config.n_blocks * ebytes),
        ),
        access=AccessPattern(
            kind=AccessKind.STREAMING,
            working_set_bytes=float(n * ebytes),
            request_bytes=ebytes,
            row_buffer_efficiency=1.0,
        ),
        workgroup_size=256,
        instructions_per_item=2.5 * config.block_size,  # load+add per element, some address math
        registers_per_thread=12,
        unroll_benefit=0.25,
        cpu_simd_fraction=1.0,
    )
