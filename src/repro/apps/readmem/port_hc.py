"""read-memory: Heterogeneous Compute port (Section VII).

Single source, raw pointers, explicit asynchronous staging.
"""

from __future__ import annotations

import numpy as np

from ...models.base import ExecutionContext
from ...models.hc import HCRuntime
from ..base import RunResult, make_result
from .kernels import read_gpu_kernel, read_kernel_spec
from .reference import ReadMemConfig, make_input

model_name = "Heterogeneous Compute"


def run(ctx: ExecutionContext, config: ReadMemConfig) -> RunResult:
    data = make_input(config, ctx.precision)
    out = np.zeros(config.n_blocks, dtype=ctx.dtype)

    hc = HCRuntime(ctx)
    hc.copy_to_device(data)
    hc.copy_to_device(out)
    hc.launch(
        read_gpu_kernel,
        read_kernel_spec(config, ctx.precision),
        arrays=[data, out],
        scalars=[config.block_size],
    )
    hc.copy_to_host(out)
    return make_result("read-benchmark", ctx, model_name, hc.simulated_seconds, out.sum())
