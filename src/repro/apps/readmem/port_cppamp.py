"""read-memory: C++ AMP port (Figure 6).

``array_view`` wrappers plus one ``parallel_for_each`` over a tiled
extent; the runtime decides when data moves.
"""

from __future__ import annotations

import numpy as np

from ...models import cppamp as amp
from ...models.base import ExecutionContext
from ..base import RunResult, make_result
from .kernels import read_gpu_kernel, read_kernel_spec
from .reference import ReadMemConfig, make_input

model_name = "C++ AMP"

TILE_SIZE = 256


def run(ctx: ExecutionContext, config: ReadMemConfig) -> RunResult:
    data = make_input(config, ctx.precision)
    out = np.zeros(config.n_blocks, dtype=ctx.dtype)

    rt = amp.AmpRuntime(ctx)
    in_view = amp.array_view(rt, data)
    out_view = amp.array_view(rt, out)
    out_view.discard_data()

    num_gpu_threads = amp.extent(config.n_blocks)
    rt.parallel_for_each(
        num_gpu_threads,
        read_gpu_kernel,
        read_kernel_spec(config, ctx.precision),
        views=[in_view, out_view],
        scalars=[config.block_size],
        writes=[out_view],
    )
    out_view.synchronize()
    return make_result("read-benchmark", ctx, model_name, rt.simulated_seconds, out.sum())
