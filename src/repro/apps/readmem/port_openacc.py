"""read-memory: OpenACC port (Figure 5).

The serial loop annotated with ``#pragma acc kernels loop
gang(size/BLOCKSIZE) vector(BLOCKSIZE) independent``.
"""

from __future__ import annotations

import numpy as np

from ...models.base import ExecutionContext
from ...models.openacc import OpenACC
from ..base import RunResult, make_result
from .kernels import read_gpu_kernel, read_kernel_spec
from .reference import ReadMemConfig, make_input

model_name = "OpenACC"


def run(ctx: ExecutionContext, config: ReadMemConfig) -> RunResult:
    data = make_input(config, ctx.precision)
    out = np.zeros(config.n_blocks, dtype=ctx.dtype)

    acc = OpenACC(ctx)
    # #pragma acc kernels loop gang(size/BLOCKSIZE) vector(BLOCKSIZE) independent
    acc.kernels_loop(
        read_gpu_kernel,
        read_kernel_spec(config, ctx.precision),
        arrays=[data, out],
        scalars=[config.block_size],
        writes=[out],
        gang=config.size // config.block_size,
        vector=config.block_size,
    )
    return make_result("read-benchmark", ctx, model_name, acc.simulated_seconds, out.sum())
