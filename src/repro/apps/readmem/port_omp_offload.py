"""read-memory: OpenMP target-offload port.

The serial loop annotated with ``#pragma omp target teams distribute
parallel for simd num_teams(size/BLOCKSIZE) thread_limit(BLOCKSIZE)``.
"""

from __future__ import annotations

import numpy as np

from ...models.base import ExecutionContext
from ...models.omp_offload import OpenMPOffload
from ..base import RunResult, make_result
from .kernels import read_gpu_kernel, read_kernel_spec
from .reference import ReadMemConfig, make_input

model_name = "OpenMP Offload"


def run(ctx: ExecutionContext, config: ReadMemConfig) -> RunResult:
    data = make_input(config, ctx.precision)
    out = np.zeros(config.n_blocks, dtype=ctx.dtype)

    omp = OpenMPOffload(ctx)
    # #pragma omp target teams distribute parallel for simd \
    #     num_teams(size/BLOCKSIZE) thread_limit(BLOCKSIZE)
    omp.target_teams_loop(
        read_gpu_kernel,
        read_kernel_spec(config, ctx.precision),
        arrays=[data, out],
        scalars=[config.block_size],
        writes=[out],
        num_teams=config.size // config.block_size,
        thread_limit=config.block_size,
    )
    return make_result("read-benchmark", ctx, model_name, omp.simulated_seconds, out.sum())
