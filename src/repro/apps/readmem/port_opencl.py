"""read-memory: OpenCL port (Figure 4).

The host side does what every OpenCL application must: discover the
platform and device, create a context and command queue, build the
program, create ``cl_mem`` buffers, stage the input explicitly, set
kernel arguments, compute the NDRange, launch, and read the result
back.  This boilerplate is the 181 changed lines of Table IV.
"""

from __future__ import annotations

import numpy as np

from ...models import opencl as cl
from ...models.base import ExecutionContext
from ..base import RunResult, make_result
from .kernels import read_gpu_kernel, read_kernel_spec
from .reference import ReadMemConfig, make_input

model_name = "OpenCL"

WORKGROUP_SIZE = 256


def init_cl(ctx: ExecutionContext) -> tuple[cl.Context, cl.CommandQueue, cl.Program]:
    """The InitCl() boilerplate of Figure 4a."""
    platforms = cl.get_platforms(ctx)
    if not platforms:
        raise cl.CLError("no OpenCL platform found")
    devices = platforms[0].get_devices()
    gpu = next(d for d in devices if d.is_gpu)
    context = cl.Context(ctx, [gpu])
    queue = cl.CommandQueue(context, gpu)
    program = cl.Program(context).build()
    return context, queue, program


def run(ctx: ExecutionContext, config: ReadMemConfig) -> RunResult:
    data = make_input(config, ctx.precision)
    out = np.zeros(config.n_blocks, dtype=ctx.dtype)

    # InitCl(): device, context, command queue, program build.
    context, queue, program = init_cl(ctx)

    # CreateClBuffer(): one cl_mem per host array.
    in_cl = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=data.nbytes)
    out_cl = cl.Buffer(context, cl.MemFlags.WRITE_ONLY, hostbuf=out)

    # CopyClDataToGPU(): explicit staging (free on the APU).
    queue.enqueue_write_buffer(in_cl, data)

    # SetCLKernelArgs() + kernel creation.
    spec = read_kernel_spec(config, ctx.precision)
    kernel = program.create_kernel("read_opencl_gpu", read_gpu_kernel, spec)
    kernel.set_args(in_cl, out_cl, config.block_size)

    # numGPUThreads = size / BLOCKSIZE, rounded up to the workgroup.
    num_gpu_threads = config.size // config.block_size
    global_size = ((num_gpu_threads + WORKGROUP_SIZE - 1) // WORKGROUP_SIZE) * WORKGROUP_SIZE

    # LaunchKernel().
    queue.enqueue_nd_range_kernel(kernel, global_size, WORKGROUP_SIZE)

    # CopyClDataToHost().
    queue.enqueue_read_buffer(out_cl, out)
    seconds = queue.finish()
    return make_result("read-benchmark", ctx, model_name, seconds, out.sum())
