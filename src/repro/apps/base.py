"""Proxy-application framework.

Every workload of the paper (read-memory, LULESH, CoMD, XSBench,
miniFE) is packaged the same way:

* a **reference** serial implementation (the "serial CPU code" that
  Table IV's line counts start from), written in NumPy and used as the
  correctness oracle;
* one **port** per programming model — a module whose host-side code
  is written in that model's idiom (OpenCL boilerplate, C++ AMP
  ``array_view`` + ``parallel_for_each``, OpenACC directives, an
  OpenMP pragma wrapper).  Ports share the numerical device kernels;
  what differs — and what the paper measures — is the host
  orchestration each model forces you to write;
* a **kernel characterization** (``kernels.py``) mapping each kernel
  to a :class:`~repro.engine.kernel.KernelSpec` for the timing model.

Ports are discovered through the :class:`ProxyApp` descriptor, which
the study framework (``repro.core``) iterates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from ..engine import energy
from ..engine.counters import PerfCounters
from ..hardware.device import Platform
from ..hardware.specs import Precision
from ..models.base import ExecutionContext


@dataclass(frozen=True)
class RunResult:
    """Outcome of running one port on one platform."""

    app: str
    model: str
    platform: str
    precision: Precision
    #: End-to-end simulated seconds (kernels + transfers + overheads).
    seconds: float
    #: Simulated seconds excluding data transfers (Figures 8a/9a use
    #: kernel-only time for the read-memory benchmark).
    kernel_seconds: float
    #: A scalar derived from the numerical output, for validation.
    checksum: float
    counters: PerfCounters
    #: Whole-run energy (``repro.engine.energy``): static platform draw
    #: over the run plus dynamic kernel + transfer energy.
    joules: float = 0.0

    @property
    def edp(self) -> float:
        """Energy-delay product in joule-seconds."""
        return self.joules * self.seconds


class Port(Protocol):
    """One application implemented in one programming model."""

    #: Canonical model name ("OpenCL", "C++ AMP", "OpenACC", "OpenMP",
    #: "Serial", "Heterogeneous Compute").
    model_name: str

    def __call__(self, ctx: ExecutionContext, config: object) -> RunResult: ...


@dataclass(frozen=True)
class ProxyApp:
    """Descriptor of one workload: metadata + its ports."""

    name: str
    description: str
    #: Command-line parameters from Table I, e.g. "./CoMD -x 60 -y 60 -z 60".
    command_line: str
    #: Number of GPU kernels (Table I).
    n_kernels: int
    #: Paper's boundedness classification (Table I).
    boundedness: str
    #: Build the default (CI-sized) configuration.
    default_config: Callable[[], object]
    #: Build the paper-sized configuration (Table I command lines).
    paper_config: Callable[[], object]
    ports: dict[str, Port] = field(default_factory=dict)

    def run(
        self,
        model: str,
        platform: Platform,
        precision: Precision,
        config: object | None = None,
    ) -> RunResult:
        """Run one port of this app on a fresh execution context."""
        try:
            port = self.ports[model]
        except KeyError:
            raise KeyError(
                f"{self.name}: no port for model {model!r}; "
                f"available: {sorted(self.ports)}"
            ) from None
        ctx = ExecutionContext(platform=platform, precision=precision)
        cfg = config if config is not None else self.default_config()
        return port(ctx, cfg)


def make_result(
    app: str,
    ctx: ExecutionContext,
    model: str,
    seconds: float,
    checksum: float,
) -> RunResult:
    """Assemble a :class:`RunResult` from a finished context.

    Energy closes here: the counters carry the event-by-event dynamic
    energy (kernels, staging copies); the static platform draw is a
    function of the run's total duration, so it is integrated at
    assembly — identically in the columnar engine's reassembly
    (``repro.engine.study_vec``).
    """
    joules = (
        energy.static_joules(ctx.platform.idle_watts, seconds)
        + ctx.counters.kernel_joules
        + ctx.counters.transfer_joules
    )
    return RunResult(
        app=app,
        model=model,
        platform=ctx.platform.name,
        precision=ctx.precision,
        seconds=seconds,
        kernel_seconds=ctx.counters.kernel_seconds,
        checksum=float(checksum),
        counters=ctx.counters,
        joules=joules,
    )
