"""Serial CPU execution — the starting point of every port.

Table IV counts lines of code added *starting from the serial CPU
implementation*; this runtime executes those reference implementations
and prices them on one core.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..engine.kernel import KernelSpec
from .base import CPUToolchain, ExecutionContext


class SerialCPU:
    """Single-threaded host execution with no runtime overhead."""

    def __init__(self, ctx: ExecutionContext) -> None:
        self.ctx = ctx
        self.toolchain = CPUToolchain("Serial", threads=1)
        self.simulated_seconds = 0.0

    def run_loop(
        self,
        func: Callable[..., None],
        spec: KernelSpec,
        arrays: Sequence[np.ndarray],
        scalars: Sequence[object] = (),
    ) -> None:
        """Run one loop nest on a single core."""
        if self.ctx.execute_kernels:
            func(*arrays, *scalars)
        self.simulated_seconds += self.toolchain.charge_loop(self.ctx, spec)
