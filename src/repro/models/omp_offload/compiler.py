"""OpenMP target-offload toolchain profiles (the second-vendor study).

The paper compared directive models on AMD hardware with exactly one
compiler per model (Table III).  The follow-on literature — Davis et
al., "Performance Assessment of OpenMP Compilers Targeting NVIDIA V100
GPUs" (WACCPD 2020) — showed that for ``#pragma omp target`` the
*compiler* is as big a variable as the model: on identical V100
hardware, identical directives span multiple-x performance gaps
between vendor toolchains.

This module encodes that spread as one :class:`CompilerProfile` per
toolchain.  All four lower the same directives the same way — only
code-generation quality differs:

* **IBM XL** — the mature vendor compiler of the Summit era; best
  ``teams distribute`` mapping and coalescing of the four.
* **Cray CCE** — close behind XL; aggressive SIMT mapping.
* **LLVM Clang** — solid regular-loop codegen, weaker on irregular
  loops (the libomptarget state-machine overhead).
* **GNU GCC** — a working but far slower offload path; Davis et al.
  measure it well behind on nearly every kernel.

Like OpenACC, OpenMP offload exposes no LDS, no fine-grained
synchronization, and no unroll/code-motion control from the directive
level — ``Capability.VECTORIZE`` only — and uses ``target data``
regions with conservative per-launch mapping outside them
(:data:`~repro.models.base.TransferPolicy.DATA_REGION`).
"""

from __future__ import annotations

from ..base import Capability, CompilerProfile, TransferPolicy


def _profile(version: str, regular: float, irregular: float, memory: float) -> CompilerProfile:
    return CompilerProfile(
        name="OpenMP Offload",
        version=version,
        capabilities=Capability.VECTORIZE,
        transfer_policy=TransferPolicy.DATA_REGION,
        vector_efficiency_regular=regular,
        vector_efficiency_irregular=irregular,
        memory_efficiency=memory,
    )


#: One profile per OpenMP-offload toolchain, keyed by compiler id.
#: The numbers order the compilers the way Davis et al.'s V100 study
#: does: XL and Cray lead, Clang trails slightly, GCC trails badly.
OMP_OFFLOAD_PROFILES: dict[str, CompilerProfile] = {
    "xl": _profile("IBM XL C/C++ v16.1.1 (-qsmp=omp -qoffload)", 0.75, 0.42, 0.60),
    "cray": _profile("Cray CCE 9.1 (craype-accel-nvidia70)", 0.74, 0.40, 0.58),
    "clang": _profile("LLVM Clang 11 (-fopenmp-targets=nvptx64)", 0.72, 0.38, 0.55),
    "gcc": _profile("GNU GCC 10.2 (-foffload=nvptx-none)", 0.35, 0.15, 0.30),
}

#: The study's default toolchain: the best of the four, so the
#: cross-vendor family compares models at their strongest — the same
#: stance the paper takes by hand-tuning its OpenCL kernels.
DEFAULT_OMP_COMPILER = "xl"

#: Profile registered under the canonical model name "OpenMP Offload".
OMP_OFFLOAD_PROFILE = OMP_OFFLOAD_PROFILES[DEFAULT_OMP_COMPILER]
