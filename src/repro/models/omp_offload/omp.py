"""OpenMP target-offload runtime (simulated ``#pragma omp target``).

The directive surface mirrors OpenACC's, with OpenMP 4.5 names:

* :meth:`OpenMPOffload.target_data` — ``#pragma omp target data
  map(to:...) map(from:...) map(tofrom:...) map(alloc:...)``.  Inside
  the region the mapped arrays live in the *device data environment*
  and launches reference them without moving them.
* :meth:`OpenMPOffload.target_teams_loop` — ``#pragma omp target teams
  distribute parallel for [simd]``: the league of teams maps to
  workgroups (``num_teams`` ~ OpenACC ``gang``), the parallel-for
  threads within a team to vector lanes (``thread_limit`` ~
  ``vector``).  Arrays *not* in an enclosing data environment are
  implicitly ``map(tofrom:...)`` on **every launch** — the same
  conservative per-launch round-trip that hurts the other directive
  models on discrete devices.
* :meth:`OpenMPOffload.update_to` / :meth:`OpenMPOffload.update_from`
  — ``#pragma omp target update to(...)/from(...)``.

Which vendor toolchain compiles the directives is a constructor
argument (:data:`~repro.models.omp_offload.compiler.OMP_OFFLOAD_PROFILES`);
the schedule is identical across compilers, only kernel pricing moves.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

import numpy as np

from ...engine.kernel import KernelSpec
from ...engine.launch import OMP_OFFLOAD_APU, OMP_OFFLOAD_DGPU
from ..base import ExecutionContext, Toolchain
from .compiler import DEFAULT_OMP_COMPILER, OMP_OFFLOAD_PROFILES


class OmpTargetError(RuntimeError):
    """An OpenMP offload runtime error (e.g. map-clause misuse)."""


class OpenMPOffload:
    """The OpenMP target-offload runtime bound to one execution context."""

    def __init__(self, ctx: ExecutionContext, compiler: str = DEFAULT_OMP_COMPILER) -> None:
        try:
            profile = OMP_OFFLOAD_PROFILES[compiler]
        except KeyError:
            raise OmpTargetError(
                f"unknown OpenMP offload compiler {compiler!r}; "
                f"known: {sorted(OMP_OFFLOAD_PROFILES)}"
            ) from None
        self.ctx = ctx
        self.compiler = compiler
        self.unified = ctx.platform.is_apu
        self.toolchain = Toolchain(
            profile, OMP_OFFLOAD_APU if self.unified else OMP_OFFLOAD_DGPU
        )
        self.simulated_seconds = 0.0
        # The device data environment: shadows keyed by id(host_array).
        self._mapped: dict[int, np.ndarray] = {}
        self._region_depth = 0

    def _charge_transfer(self, nbytes: int, direction: str) -> None:
        self.simulated_seconds += self.toolchain.charge_transfer(self.ctx, nbytes, direction)

    def _map_to(self, host: np.ndarray) -> np.ndarray:
        """Map ``host`` into the device data environment, copying in."""
        if self.unified:
            return host
        if not self.ctx.execute_kernels:
            self._charge_transfer(host.nbytes, "h2d")
            return host
        device = self._mapped.get(id(host))
        if device is None:
            device = host.copy()
        else:
            np.copyto(device, host)
        self._charge_transfer(host.nbytes, "h2d")
        return device

    def _map_alloc(self, host: np.ndarray) -> np.ndarray:
        """Allocate device storage without copying (``map(alloc:)``)."""
        if self.unified or not self.ctx.execute_kernels:
            return host
        return self._mapped.get(id(host), np.empty_like(host))

    def is_mapped(self, host: np.ndarray) -> bool:
        """Whether ``host`` is in an active device data environment."""
        return self.unified or id(host) in self._mapped

    def update_from(self, host: np.ndarray) -> None:
        """``#pragma omp target update from(...)``: refresh the host
        copy of a mapped array mid-region."""
        if self.unified:
            return
        device = self._mapped.get(id(host))
        if device is None:
            raise OmpTargetError("target update from(...) of an unmapped array")
        if self.ctx.execute_kernels:
            np.copyto(host, device)
        self._charge_transfer(host.nbytes, "d2h")

    def update_to(self, host: np.ndarray) -> None:
        """``#pragma omp target update to(...)``: push host changes to
        the device copy of a mapped array."""
        if self.unified:
            return
        device = self._mapped.get(id(host))
        if device is None:
            raise OmpTargetError("target update to(...) of an unmapped array")
        if self.ctx.execute_kernels:
            np.copyto(device, host)
        self._charge_transfer(host.nbytes, "h2d")

    @contextmanager
    def target_data(
        self,
        to: Sequence[np.ndarray] = (),
        from_: Sequence[np.ndarray] = (),
        tofrom: Sequence[np.ndarray] = (),
        alloc: Sequence[np.ndarray] = (),
    ) -> Iterator[None]:
        """``#pragma omp target data map(...)``: hoist transfers to
        region boundaries.  ``from_`` spells ``map(from:)`` (``from`` is
        a Python keyword)."""
        write_back_ids = {id(a) for a in from_} | {id(a) for a in tofrom}
        entered: list[tuple[np.ndarray, np.ndarray, bool]] = []
        for host in list(to) + list(tofrom):
            device = self._map_to(host)
            entered.append((host, device, id(host) in write_back_ids))
            self._mapped[id(host)] = device
        for host in list(from_) + list(alloc):
            if id(host) in self._mapped:
                continue
            device = self._map_alloc(host)
            entered.append((host, device, id(host) in write_back_ids))
            self._mapped[id(host)] = device
        self._region_depth += 1
        try:
            yield
        finally:
            self._region_depth -= 1
            for host, device, write_back in entered:
                if write_back and not self.unified:
                    if self.ctx.execute_kernels and device is not host:
                        np.copyto(host, device)
                    self._charge_transfer(host.nbytes, "d2h")
                del self._mapped[id(host)]

    def target_teams_loop(
        self,
        func: Callable[..., None],
        spec: KernelSpec,
        arrays: Sequence[np.ndarray],
        scalars: Sequence[object] = (),
        writes: Sequence[np.ndarray] = (),
        num_teams: int | None = None,
        thread_limit: int | None = None,
    ) -> None:
        """``#pragma omp target teams distribute parallel for``: offload
        one loop nest.

        ``arrays`` are the host arrays the loop references; ``writes``
        the subset it modifies.  ``num_teams``/``thread_limit`` mirror
        the clauses (workgroups / threads per workgroup in OpenCL
        terms); arrays outside any data environment are implicitly
        ``map(tofrom:)`` for the duration of the construct.
        """
        if thread_limit is not None and thread_limit <= 0:
            raise OmpTargetError("thread_limit clause must be positive")
        if num_teams is not None and num_teams <= 0:
            raise OmpTargetError("num_teams clause must be positive")

        # Mapping: arrays in a device data environment are already
        # resident; the rest are implicitly map(tofrom:) per launch.
        device_arrays: list[np.ndarray] = []
        transient: list[tuple[np.ndarray, np.ndarray]] = []
        for host in arrays:
            if self.unified:
                device_arrays.append(host)
            elif id(host) in self._mapped:
                device_arrays.append(self._mapped[id(host)])
            else:
                device = self._map_to(host)
                device_arrays.append(device)
                transient.append((host, device))

        if self.ctx.execute_kernels:
            func(*device_arrays, *scalars)
        self.simulated_seconds += self.toolchain.charge_gpu_kernel(
            self.ctx, spec, n_buffers=len(arrays)
        )

        if not self.unified:
            written = {id(w) for w in writes}
            for host, device in transient:
                if id(host) in written or not writes:
                    if self.ctx.execute_kernels and device is not host:
                        np.copyto(host, device)
                    self._charge_transfer(host.nbytes, "d2h")
            # Writes to mapped arrays stay on the device until the data
            # region exits — the point of `target data`.
