"""Simulated OpenMP target offload (the second-vendor directive model).

Usage mirrors directive-annotated C::

    omp = OpenMPOffload(ctx)
    with omp.target_data(to=[a], from_=[out]):
        omp.target_teams_loop(
            kernel_func, spec,
            arrays=[a, out], writes=[out],
            num_teams=n // 64, thread_limit=64,
        )
"""

from .compiler import (
    DEFAULT_OMP_COMPILER,
    OMP_OFFLOAD_PROFILE,
    OMP_OFFLOAD_PROFILES,
)
from .omp import OmpTargetError, OpenMPOffload

__all__ = [
    "DEFAULT_OMP_COMPILER",
    "OMP_OFFLOAD_PROFILE",
    "OMP_OFFLOAD_PROFILES",
    "OmpTargetError",
    "OpenMPOffload",
]
