"""Model registry and Table III metadata.

The comparison framework iterates models by name; this registry maps
those names to compiler profiles and to the compiler/runtime versions
the paper lists in Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import CompilerProfile
from .cppamp.compiler import CPPAMP_PROFILE
from .hc import HC_PROFILE
from .openacc.compiler import OPENACC_PROFILE
from .opencl.compiler import OPENCL_PROFILE

#: The three models of the paper's comparison, in its column order.
GPU_MODEL_NAMES = ("OpenCL", "C++ AMP", "OpenACC")

#: Profiles by canonical name (the GPU-offload models).
PROFILES: dict[str, CompilerProfile] = {
    OPENCL_PROFILE.name: OPENCL_PROFILE,
    CPPAMP_PROFILE.name: CPPAMP_PROFILE,
    OPENACC_PROFILE.name: OPENACC_PROFILE,
    HC_PROFILE.name: HC_PROFILE,
}


@dataclass(frozen=True)
class CompilerEntry:
    """One row of Table III."""

    model: str
    compiler: str


def table3_rows() -> list[CompilerEntry]:
    """Table III: Compilers Used for Programming Models."""
    return [
        CompilerEntry(model="OpenCL", compiler=OPENCL_PROFILE.version),
        CompilerEntry(model="C++ AMP", compiler=CPPAMP_PROFILE.version),
        CompilerEntry(model="OpenACC", compiler=OPENACC_PROFILE.version),
    ]


def profile_for(name: str) -> CompilerProfile:
    """Look up a compiler profile by model name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown programming model {name!r}; known: {sorted(PROFILES)}"
        ) from None
