"""Model registry and Table III metadata.

The comparison framework iterates models by name; this registry maps
those names to compiler profiles and to the compiler/runtime versions
the paper lists in Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import CompilerProfile
from .cppamp.compiler import CPPAMP_PROFILE
from .hc import HC_PROFILE
from .omp_offload.compiler import OMP_OFFLOAD_PROFILE
from .openacc.compiler import OPENACC_PROFILE
from .opencl.compiler import OPENCL_PROFILE

#: The three models of the paper's comparison, in its column order.
GPU_MODEL_NAMES = ("OpenCL", "C++ AMP", "OpenACC")

#: Profiles by canonical name (the GPU-offload models).
PROFILES: dict[str, CompilerProfile] = {
    OPENCL_PROFILE.name: OPENCL_PROFILE,
    CPPAMP_PROFILE.name: CPPAMP_PROFILE,
    OPENACC_PROFILE.name: OPENACC_PROFILE,
    HC_PROFILE.name: HC_PROFILE,
    OMP_OFFLOAD_PROFILE.name: OMP_OFFLOAD_PROFILE,
}

#: CLI/API spellings of the canonical model names.  Keys are matched
#: after lowercasing and collapsing ``_`` to ``-``; canonical names
#: themselves always pass through :func:`normalize_model_name`.
MODEL_ALIASES: dict[str, str] = {
    "opencl": "OpenCL",
    "cl": "OpenCL",
    "c++-amp": "C++ AMP",
    "c++amp": "C++ AMP",
    "cppamp": "C++ AMP",
    "amp": "C++ AMP",
    "openacc": "OpenACC",
    "acc": "OpenACC",
    "openmp": "OpenMP",
    "omp": "OpenMP",
    "serial": "Serial",
    "hc": "Heterogeneous Compute",
    "heterogeneous-compute": "Heterogeneous Compute",
    "omp-offload": "OpenMP Offload",
    "openmp-offload": "OpenMP Offload",
    "omp-target": "OpenMP Offload",
    "target": "OpenMP Offload",
}


def normalize_model_name(name: str) -> str:
    """Resolve a CLI/API spelling to the canonical model name.

    Canonical names ("OpenCL", "OpenMP Offload", ...) pass through
    unchanged; known aliases ("omp-offload", "cppamp", ...) resolve
    case-insensitively; anything else is returned as-is so the
    registry/port lookup can raise its usual error.
    """
    key = name.strip().lower().replace("_", "-").replace(" ", "-")
    return MODEL_ALIASES.get(key, name)


@dataclass(frozen=True)
class CompilerEntry:
    """One row of Table III."""

    model: str
    compiler: str


def table3_rows() -> list[CompilerEntry]:
    """Table III: Compilers Used for Programming Models."""
    return [
        CompilerEntry(model="OpenCL", compiler=OPENCL_PROFILE.version),
        CompilerEntry(model="C++ AMP", compiler=CPPAMP_PROFILE.version),
        CompilerEntry(model="OpenACC", compiler=OPENACC_PROFILE.version),
    ]


def omp_offload_rows() -> list[CompilerEntry]:
    """The second-vendor analogue of Table III: the OpenMP-offload
    toolchains of the V100 family (Davis et al.'s compiler spread),
    which the paper's table predates."""
    from .omp_offload.compiler import OMP_OFFLOAD_PROFILES

    return [
        CompilerEntry(model=f"OpenMP Offload [{key}]", compiler=profile.version)
        for key, profile in sorted(OMP_OFFLOAD_PROFILES.items())
    ]


def profile_for(name: str) -> CompilerProfile:
    """Look up a compiler profile by model name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown programming model {name!r}; known: {sorted(PROFILES)}"
        ) from None
