"""OpenCL host API (simulated).

A deliberately faithful miniature of the OpenCL 1.2 host interface:
platform/device discovery, contexts, command queues, ``cl_mem``
buffers, explicit ``enqueueWriteBuffer``/``enqueueReadBuffer`` copies
and NDRange kernel launches.  Application ports written against this
API read like real OpenCL host code — which is exactly the point:
Table IV's productivity gap comes from this boilerplate.

Functional semantics: buffers hold real NumPy arrays; kernels are
Python callables executed on the buffers' device arrays.  Simulated
costs (transfers, launches, kernel time) are charged to the
:class:`~repro.models.base.ExecutionContext` through the OpenCL
toolchain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ...engine.kernel import KernelSpec
from ...engine.launch import OPENCL_APU, OPENCL_DGPU
from ..base import ExecutionContext, Toolchain
from .compiler import OPENCL_PROFILE


class CLError(RuntimeError):
    """An OpenCL runtime error (invalid handle, out of resources...)."""


class MemFlags(enum.Flag):
    """Subset of ``cl_mem_flags`` the proxy applications use."""

    READ_ONLY = enum.auto()
    WRITE_ONLY = enum.auto()
    READ_WRITE = enum.auto()
    COPY_HOST_PTR = enum.auto()
    USE_HOST_PTR = enum.auto()


@dataclass(frozen=True)
class CLDevice:
    """One OpenCL device as reported by discovery."""

    name: str
    is_gpu: bool


class CLPlatform:
    """An OpenCL platform (one per simulated hardware platform)."""

    def __init__(self, ctx: ExecutionContext) -> None:
        self._ctx = ctx
        self.name = f"AMD Accelerated Parallel Processing ({ctx.platform.name})"

    def get_devices(self) -> list[CLDevice]:
        return [
            CLDevice(name=self._ctx.platform.gpu.name, is_gpu=True),
            CLDevice(name=self._ctx.platform.host.name, is_gpu=False),
        ]


def get_platforms(ctx: ExecutionContext) -> list[CLPlatform]:
    """``clGetPlatformIDs``: enumerate platforms on the system."""
    return [CLPlatform(ctx)]


class Context:
    """``cl_context``: owns devices, buffers and programs."""

    def __init__(self, ctx: ExecutionContext, devices: Sequence[CLDevice]) -> None:
        if not devices:
            raise CLError("clCreateContext: no devices given")
        self.execution = ctx
        self.devices = list(devices)
        self.toolchain = Toolchain(
            OPENCL_PROFILE,
            OPENCL_APU if ctx.platform.is_apu else OPENCL_DGPU,
        )
        self._released = False

    def release(self) -> None:
        self._released = True

    def _check(self) -> None:
        if self._released:
            raise CLError("use of released cl_context")


class Buffer:
    """``cl_mem``: a device-resident allocation.

    On the discrete GPU the buffer lives in GDDR5 and must be staged
    explicitly.  On the APU the allocation aliases host memory
    (zero-copy), but kernels still reach it through the Catalyst
    ``cl_mem`` mapping path, which is what C++ AMP's HSA pointers
    avoid (Sec. VI-A, XSBench on the APU).
    """

    def __init__(self, context: Context, flags: MemFlags, size: int = 0, hostbuf: np.ndarray | None = None) -> None:
        context._check()
        self.context = context
        self.flags = flags
        if hostbuf is None and size <= 0:
            raise CLError("clCreateBuffer: need a size or a host pointer")
        if hostbuf is not None:
            size = hostbuf.nbytes
        self.size = int(size)
        gpu_memory = context.execution.platform.gpu.memory
        gpu_memory.check_allocation(self.size)
        unified = context.execution.platform.is_apu
        if hostbuf is not None and (MemFlags.USE_HOST_PTR in flags and unified):
            self._device_array = hostbuf  # zero-copy alias
        elif hostbuf is not None and MemFlags.COPY_HOST_PTR in flags:
            self._device_array = hostbuf.copy()
            # The copy is synchronous host-side work: its cost lands in
            # the counters but not on any command queue's clock, hence
            # counted=False (the return value is deliberately dropped).
            context.toolchain.charge_transfer(
                context.execution, self.size, "h2d", counted=False
            )
        else:
            self._device_array = (
                np.zeros(hostbuf.shape, hostbuf.dtype) if hostbuf is not None else None
            )
        self._shape = None if self._device_array is None else self._device_array.shape
        self._dtype = None if self._device_array is None else self._device_array.dtype

    @property
    def device_array(self) -> np.ndarray:
        if self._device_array is None:
            raise CLError("buffer used before any host data was staged")
        return self._device_array


class Kernel:
    """``cl_kernel``: a compiled entry point plus its argument slots.

    ``func`` is the device code — a NumPy callable over the resolved
    arguments — and ``spec`` is its performance characterization.
    """

    def __init__(self, program: "Program", name: str, func: Callable[..., None], spec: KernelSpec) -> None:
        self.program = program
        self.name = name
        self.func = func
        self.spec = spec
        self._args: list[object] | None = None

    def set_args(self, *args: object) -> None:
        """``clSetKernelArg`` for every argument at once."""
        self._args = list(args)

    def _resolved_args(self) -> list[object]:
        if self._args is None:
            raise CLError(f"kernel {self.name!r}: arguments not set")
        return [a.device_array if isinstance(a, Buffer) else a for a in self._args]

    def _buffer_args(self) -> list[Buffer]:
        return [a for a in (self._args or []) if isinstance(a, Buffer)]


class Program:
    """``cl_program``: a collection of kernels built for a context."""

    def __init__(self, context: Context) -> None:
        context._check()
        self.context = context
        self._kernels: dict[str, Kernel] = {}
        self._built = False

    def build(self) -> "Program":
        """``clBuildProgram``: no-op compile step (kernels are Python)."""
        self._built = True
        return self

    def create_kernel(self, name: str, func: Callable[..., None], spec: KernelSpec) -> Kernel:
        if not self._built:
            raise CLError("clCreateKernel before clBuildProgram")
        kernel = Kernel(self, name, func, spec)
        self._kernels[name] = kernel
        return kernel


class CommandQueue:
    """``cl_command_queue``: in-order execution with simulated timing."""

    def __init__(self, context: Context, device: CLDevice) -> None:
        context._check()
        if not device.is_gpu:
            raise CLError("this study enqueues kernels on the GPU device only")
        self.context = context
        self.device = device
        self.simulated_seconds = 0.0

    def enqueue_write_buffer(self, buffer: Buffer, hostbuf: np.ndarray) -> None:
        """Explicit host->device copy (free on the APU)."""
        execution = self.context.execution
        if not execution.execute_kernels:
            buffer._device_array = hostbuf  # projection mode: no data motion
        elif buffer._device_array is None or buffer._device_array.shape != hostbuf.shape:
            buffer._device_array = hostbuf.copy()
        elif buffer._device_array is not hostbuf:
            np.copyto(buffer._device_array, hostbuf)
        if not execution.platform.is_apu:
            self.simulated_seconds += self.context.toolchain.charge_transfer(
                execution, hostbuf.nbytes, "h2d"
            )

    def enqueue_read_buffer(self, buffer: Buffer, hostbuf: np.ndarray) -> None:
        """Explicit device->host copy (free on the APU)."""
        execution = self.context.execution
        if execution.execute_kernels and buffer._device_array is not hostbuf:
            np.copyto(hostbuf, buffer.device_array)
        if not execution.platform.is_apu:
            self.simulated_seconds += self.context.toolchain.charge_transfer(
                execution, hostbuf.nbytes, "d2h"
            )

    def enqueue_nd_range_kernel(
        self,
        kernel: Kernel,
        global_size: int,
        local_size: int | None = None,
    ) -> None:
        """Launch ``kernel`` over ``global_size`` work-items."""
        if global_size <= 0:
            raise CLError("global work size must be positive")
        if local_size is not None and global_size % local_size != 0:
            raise CLError("global size must be a multiple of local size")
        execution = self.context.execution
        buffers = kernel._buffer_args()
        # On the APU, cl_mem arguments pay the Catalyst mapping toll.
        mapped = sum(b.size for b in buffers) if execution.platform.is_apu else 0
        if execution.execute_kernels:
            kernel.func(*kernel._resolved_args())
        self.simulated_seconds += self.context.toolchain.charge_gpu_kernel(
            execution, kernel.spec, n_buffers=len(buffers), mapped_bytes=mapped
        )

    def finish(self) -> float:
        """``clFinish``: drain the queue; returns simulated seconds."""
        return self.simulated_seconds
