"""OpenCL toolchain profile (AMD Catalyst driver v14.6, Table III).

OpenCL is the paper's traditional model: the programmer writes the
kernels by hand, so every optimization row of Figure 11 is available —
vectorization, LDS, fine-grained synchronization, explicit unrolling
and code-motion reduction — and data transfers are fully explicit.
"""

from __future__ import annotations

from ..base import Capability, CompilerProfile, TransferPolicy

#: Hand-tuned kernels: the reference point every other model is
#: measured against (its read-memory kernel saturates the bus).
OPENCL_PROFILE = CompilerProfile(
    name="OpenCL",
    version="AMD Catalyst driver v14.6",
    capabilities=Capability.all(),
    transfer_policy=TransferPolicy.EXPLICIT,
    vector_efficiency_regular=1.0,
    vector_efficiency_irregular=0.92,
    memory_efficiency=1.0,
    divergence_reduction=0.5,
    retarget_penalty=0.25,
)
