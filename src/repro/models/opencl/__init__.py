"""Simulated OpenCL 1.2: explicit host API + hand-tuned kernels.

Usage mirrors real OpenCL host code::

    platforms = cl.get_platforms(ctx)
    device = platforms[0].get_devices()[0]
    context = cl.Context(ctx, [device])
    queue = cl.CommandQueue(context, device)
    program = cl.Program(context).build()
    in_cl = cl.Buffer(context, cl.MemFlags.READ_ONLY, size=a.nbytes)
    queue.enqueue_write_buffer(in_cl, a)
    kernel = program.create_kernel("read_memory", func, spec)
    kernel.set_args(in_cl, out_cl, n)
    queue.enqueue_nd_range_kernel(kernel, global_size, local_size)
    queue.enqueue_read_buffer(out_cl, out)
    queue.finish()
"""

from .compiler import OPENCL_PROFILE
from .host import (
    Buffer,
    CLDevice,
    CLError,
    CLPlatform,
    CommandQueue,
    Context,
    Kernel,
    MemFlags,
    Program,
    get_platforms,
)

__all__ = [
    "Buffer",
    "CLDevice",
    "CLError",
    "CLPlatform",
    "CommandQueue",
    "Context",
    "Kernel",
    "MemFlags",
    "OPENCL_PROFILE",
    "Program",
    "get_platforms",
]
