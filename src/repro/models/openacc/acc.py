"""OpenACC runtime (simulated PGI).

Section III-B: the programmer annotates loops with ``#pragma acc
kernels loop gang(...) vector(...)`` and optionally wraps phases in
``#pragma acc data`` regions that hoist transfers out of the loop.

The Python rendering keeps both directives:

* :meth:`OpenACC.data` — a context manager naming ``copyin`` /
  ``copyout`` / ``copy`` / ``create`` arrays; inside the region those
  arrays are *present* on the device and launches do not move them.
* :meth:`OpenACC.kernels_loop` — one offloaded loop nest.  Arrays not
  covered by an enclosing data region are conservatively copied in
  before and back after **every launch**, which is the per-launch
  transfer behaviour that hurts the emerging models on the dGPU.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

import numpy as np

from ...engine.kernel import KernelSpec
from ...engine.launch import OPENACC_APU, OPENACC_DGPU
from ..base import ExecutionContext, Toolchain
from .compiler import OPENACC_PROFILE


class AccError(RuntimeError):
    """An OpenACC runtime error (e.g. data-region misuse)."""


class OpenACC:
    """The OpenACC runtime bound to one execution context."""

    def __init__(self, ctx: ExecutionContext) -> None:
        self.ctx = ctx
        self.unified = ctx.platform.is_apu
        self.toolchain = Toolchain(
            OPENACC_PROFILE, OPENACC_APU if self.unified else OPENACC_DGPU
        )
        self.simulated_seconds = 0.0
        # Device shadows of host arrays, keyed by id(host_array).
        self._present: dict[int, np.ndarray] = {}
        self._region_depth = 0

    def _charge_transfer(self, nbytes: int, direction: str) -> None:
        self.simulated_seconds += self.toolchain.charge_transfer(self.ctx, nbytes, direction)

    def _upload(self, host: np.ndarray) -> np.ndarray:
        """Make ``host`` present on the device (copying when discrete)."""
        if self.unified:
            return host
        if not self.ctx.execute_kernels:
            self._charge_transfer(host.nbytes, "h2d")
            return host
        device = self._present.get(id(host))
        if device is None:
            device = host.copy()
        else:
            np.copyto(device, host)
        self._charge_transfer(host.nbytes, "h2d")
        return device

    def _create(self, host: np.ndarray) -> np.ndarray:
        """Allocate device storage without copying (``create`` clause)."""
        if self.unified or not self.ctx.execute_kernels:
            return host
        return self._present.get(id(host), np.empty_like(host))

    def is_present(self, host: np.ndarray) -> bool:
        """Whether ``host`` is inside an active data region."""
        return self.unified or id(host) in self._present

    def update_host(self, host: np.ndarray) -> None:
        """``#pragma acc update host(...)``: refresh the host copy of a
        region-resident array (e.g. per-iteration reduction results)."""
        if self.unified:
            return
        device = self._present.get(id(host))
        if device is None:
            raise AccError("update host of an array not in a data region")
        if self.ctx.execute_kernels:
            np.copyto(host, device)
        self._charge_transfer(host.nbytes, "d2h")

    def update_device(self, host: np.ndarray) -> None:
        """``#pragma acc update device(...)``: push host changes to the
        device copy of a region-resident array."""
        if self.unified:
            return
        device = self._present.get(id(host))
        if device is None:
            raise AccError("update device of an array not in a data region")
        if self.ctx.execute_kernels:
            np.copyto(device, host)
        self._charge_transfer(host.nbytes, "h2d")

    @contextmanager
    def data(
        self,
        copyin: Sequence[np.ndarray] = (),
        copyout: Sequence[np.ndarray] = (),
        copy: Sequence[np.ndarray] = (),
        create: Sequence[np.ndarray] = (),
    ) -> Iterator[None]:
        """``#pragma acc data``: hoist transfers to region boundaries."""
        write_back_ids = {id(a) for a in copyout} | {id(a) for a in copy}
        entered: list[tuple[np.ndarray, np.ndarray, bool]] = []
        for host in list(copyin) + list(copy):
            device = self._upload(host)
            entered.append((host, device, id(host) in write_back_ids))
            self._present[id(host)] = device
        for host in list(copyout) + list(create):
            if id(host) in self._present:
                continue
            device = self._create(host)
            entered.append((host, device, id(host) in write_back_ids))
            self._present[id(host)] = device
        self._region_depth += 1
        try:
            yield
        finally:
            self._region_depth -= 1
            for host, device, write_back in entered:
                if write_back and not self.unified:
                    if self.ctx.execute_kernels and device is not host:
                        np.copyto(host, device)
                    self._charge_transfer(host.nbytes, "d2h")
                del self._present[id(host)]

    def kernels_loop(
        self,
        func: Callable[..., None],
        spec: KernelSpec,
        arrays: Sequence[np.ndarray],
        scalars: Sequence[object] = (),
        writes: Sequence[np.ndarray] = (),
        gang: int | None = None,
        vector: int | None = None,
    ) -> None:
        """``#pragma acc kernels loop gang(G) vector(V)``: offload a loop.

        ``arrays`` are the host arrays the loop references; ``writes``
        the subset it modifies.  ``gang``/``vector`` mirror the paper's
        clauses (workgroups / threads per workgroup in OpenCL terms)
        and override the spec's workgroup size when given.
        """
        if vector is not None and vector <= 0:
            raise AccError("vector clause must be positive")
        if gang is not None and gang <= 0:
            raise AccError("gang clause must be positive")

        # Transfers: arrays covered by a data region are already
        # present; the rest conservatively round-trip per launch.
        device_arrays: list[np.ndarray] = []
        transient: list[tuple[np.ndarray, np.ndarray]] = []
        for host in arrays:
            if self.unified:
                device_arrays.append(host)
            elif id(host) in self._present:
                device_arrays.append(self._present[id(host)])
            else:
                device = self._upload(host)
                device_arrays.append(device)
                transient.append((host, device))

        if self.ctx.execute_kernels:
            func(*device_arrays, *scalars)
        self.simulated_seconds += self.toolchain.charge_gpu_kernel(
            self.ctx, spec, n_buffers=len(arrays)
        )

        if not self.unified:
            written = {id(w) for w in writes}
            for host, device in transient:
                if id(host) in written or not writes:
                    if self.ctx.execute_kernels and device is not host:
                        np.copyto(host, device)
                    self._charge_transfer(host.nbytes, "d2h")
            # Writes to region-resident arrays stay on the device until
            # region exit — that is the whole point of `acc data`.
