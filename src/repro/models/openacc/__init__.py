"""Simulated OpenACC (PGI v14.10).

Usage mirrors directive-annotated C::

    acc = OpenACC(ctx)
    with acc.data(copyin=[a], copyout=[out]):
        acc.kernels_loop(
            kernel_func, spec,
            arrays=[a, out], writes=[out],
            gang=n // 64, vector=64,
        )
"""

from .acc import AccError, OpenACC
from .compiler import OPENACC_PROFILE

__all__ = ["AccError", "OPENACC_PROFILE", "OpenACC"]
