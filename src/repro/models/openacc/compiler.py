"""OpenACC toolchain profile (PGI v14.10, Table III).

OpenACC is the least flexible row of Figure 11: the compiler can
vectorize annotated loops but exposes no LDS, no fine-grained
synchronization, no unrolling and no code-motion control.  The paper
additionally observes that PGI "proved challenging in terms of mapping
the parallelism to appropriately use GPU vector cores" (CoMD's
worst-of-all result) and that complicated access patterns (miniFE's
CSR-Adaptive SpMV) defeat it entirely.
"""

from __future__ import annotations

from ..base import Capability, CompilerProfile, TransferPolicy

OPENACC_PROFILE = CompilerProfile(
    name="OpenACC",
    version="PGI v14.10 with AMD Catalyst driver v14.6",
    capabilities=Capability.VECTORIZE,
    transfer_policy=TransferPolicy.DATA_REGION,
    vector_efficiency_regular=0.70,
    vector_efficiency_irregular=0.35,
    memory_efficiency=0.50,
)
