"""Programming-model abstractions.

The paper's comparison rests on three ingredients per model:

1. **Compiler capabilities** (Figure 11) — which optimizations the
   toolchain can express: vectorization, LDS use, fine-grained
   synchronization, explicit loop unrolling, code-motion reduction.
2. **Transfer policy** (Section VI-A) — who moves data to the discrete
   GPU and when: the programmer (OpenCL, explicit, once per phase) or
   the compiler (C++ AMP / OpenACC, conservatively per launch, with
   OpenACC ``data`` regions as a partial remedy).
3. **Code-generation quality** — how close the generated ISA comes to
   hand-tuned OpenCL (measured by the read-memory benchmark: OpenCL is
   1.3x better than C++ AMP and 2x better than OpenACC).

A :class:`Toolchain` bundles these and *lowers* architecture-neutral
:class:`~repro.engine.kernel.KernelSpec` objects into
:class:`~repro.engine.kernel.LoweredKernel` objects the timing model
can price.  Nothing in the lowering hard-codes which model wins: the
outcomes of Figures 8-10 emerge from capabilities x kernels x devices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..engine import energy
from ..engine.counters import PerfCounters
from ..engine.kernel import KernelSpec, LoweredKernel
from ..engine.launch import RuntimeOverheads
from ..engine.memo import cached_time_cpu_kernel, cached_time_gpu_kernel
from ..hardware.device import Platform
from ..hardware.specs import Precision
from ..obs import spans as obs_spans


def _platform_track(ctx: "ExecutionContext") -> str:
    """Track-name prefix of the context's platform ("apu"/"dgpu"/"v100")."""
    if ctx.platform.key:
        return ctx.platform.key
    return "apu" if ctx.platform.is_apu else "dgpu"


class Capability(enum.Flag):
    """Optimizations a programming model lets the programmer (or its
    compiler) apply — the rows of Figure 11."""

    NONE = 0
    VECTORIZE = enum.auto()
    LDS = enum.auto()
    FINE_SYNC = enum.auto()
    UNROLL = enum.auto()
    CODE_MOTION = enum.auto()

    @classmethod
    def all(cls) -> "Capability":
        return cls.VECTORIZE | cls.LDS | cls.FINE_SYNC | cls.UNROLL | cls.CODE_MOTION


class TransferPolicy(enum.Enum):
    """Who stages data into discrete-GPU memory, and how often."""

    #: The programmer writes the copies: each buffer moves exactly when
    #: the application says so (OpenCL, Heterogeneous Compute).
    EXPLICIT = "explicit"
    #: The compiler conservatively makes every kernel's inputs resident
    #: before launch and results visible after (CLAMP C++ AMP on dGPU).
    COMPILER_PER_LAUNCH = "compiler-per-launch"
    #: Directive data regions hoist copies to region boundaries, but
    #: anything not covered by a region still moves per launch (PGI
    #: OpenACC).
    DATA_REGION = "data-region"


@dataclass(frozen=True)
class CompilerProfile:
    """Code-generation quality and feature set of one toolchain."""

    name: str
    version: str
    capabilities: Capability
    transfer_policy: TransferPolicy
    #: SIMD lane utilisation of generated code for regular (streaming,
    #: stencil) loops and for irregular (gather, divergent) loops.
    vector_efficiency_regular: float
    vector_efficiency_irregular: float
    #: Coalescing quality of generated global loads/stores.
    memory_efficiency: float
    #: Fraction of a kernel's intrinsic branch divergence the tuner can
    #: remove by restructuring (hand-written kernels only).
    divergence_reduction: float = 0.0
    #: Performance-portability penalty of hand-tuned code run on a
    #: platform it was not tuned for (Sec. VI-A: "OpenCL requires
    #: hand-tuned code for each architecture for performance
    #: portability").  Zero for compiler-retargeted models; OpenCL's
    #: kernels here are tuned for the discrete GPU, so they lose this
    #: fraction of vector/memory efficiency on the APU — fully for
    #: irregular kernels, 30% of it for regular ones.
    retarget_penalty: float = 0.0

    def is_irregular(self, spec: KernelSpec) -> bool:
        """Irregular kernels stress the compiler's ability to map
        parallelism onto vector lanes (Sec. VI-C: OpenACC 'proved
        challenging in terms of mapping the parallelism')."""
        return spec.divergence > 0.05 or spec.cpu_simd_fraction < 0.5

    def lower(self, spec: KernelSpec, retargeted: bool = False) -> LoweredKernel:
        """Lower one kernel spec through this toolchain.

        ``retargeted=True`` prices hand-tuned code on a platform other
        than the one it was tuned for (see :attr:`retarget_penalty`).
        """
        notes: list[str] = []

        if Capability.VECTORIZE not in self.capabilities:
            vector_efficiency = 1.0 / 16.0  # scalar lanes only
            notes.append("no vectorization")
        elif self.is_irregular(spec):
            vector_efficiency = self.vector_efficiency_irregular
            notes.append("irregular-loop codegen")
        else:
            vector_efficiency = self.vector_efficiency_regular
            notes.append("regular-loop codegen")

        memory_efficiency = self.memory_efficiency
        if retargeted and self.retarget_penalty > 0:
            penalty = self.retarget_penalty
            if not self.is_irregular(spec):
                penalty *= 0.3
            vector_efficiency *= 1.0 - penalty
            memory_efficiency *= 1.0 - penalty
            notes.append("hand-tuning retargeted without re-optimization")

        wants_lds = spec.lds_bytes_per_workgroup > 0
        has_lds = Capability.LDS in self.capabilities
        needs_sync = wants_lds and spec.lds_traffic_filter > 0
        has_sync = Capability.FINE_SYNC in self.capabilities
        uses_lds = wants_lds and has_lds and (has_sync or not needs_sync)
        if wants_lds and not uses_lds:
            # Tiling is also a parallelism-mapping strategy: without it
            # the cooperative inner loop degenerates to scattered
            # per-lane work (the paper's CoMD observation that tiles
            # 'improved ... by almost 3x', and PGI's 'inability to
            # expose vector-parallelism').
            vector_efficiency *= 0.55
            notes.append("LDS tiling unavailable; global-memory fallback")

        instruction_scale = 1.0
        if spec.unroll_benefit > 0 and Capability.UNROLL not in self.capabilities:
            instruction_scale /= 1.0 - spec.unroll_benefit / 2.0
            notes.append("no explicit unrolling")
        if spec.unroll_benefit > 0 and Capability.CODE_MOTION not in self.capabilities:
            instruction_scale /= 1.0 - spec.unroll_benefit / 2.0
            notes.append("no code-motion reduction")

        divergence = spec.divergence * (1.0 - self.divergence_reduction)

        return LoweredKernel(
            spec=spec,
            vector_efficiency=vector_efficiency,
            uses_lds=uses_lds,
            instruction_scale=instruction_scale,
            divergence=divergence,
            memory_efficiency=memory_efficiency,
            notes=tuple(notes),
        )


@dataclass
class ExecutionContext:
    """One application run: a platform, a precision, and its counters.

    Model runtimes charge simulated time here while executing the
    application's NumPy kernels functionally.

    ``execute_kernels=False`` selects *projection mode*: ports build
    the exact same launch/transfer schedule and every simulated cost is
    charged identically, but the NumPy kernel bodies and host<->device
    copies are skipped.  This prices paper-sized problems (e.g. CoMD's
    864k atoms, XSBench's 240 MB table) that would be impractically
    slow to execute functionally; numerical results are garbage in this
    mode and correctness is validated separately at functional sizes.
    """

    platform: Platform
    precision: Precision
    counters: PerfCounters = field(default_factory=PerfCounters)
    execute_kernels: bool = True
    #: When set (a :class:`ChargeLog`), every ``charge_*`` call records
    #: its arguments instead of pricing — *capture mode*, used by the
    #: columnar study engine to lift a port's schedule into arrays.
    charge_log: "ChargeLog | None" = None

    @property
    def dtype(self) -> np.dtype:
        """NumPy dtype matching the run's floating-point precision."""
        return np.dtype(np.float32 if self.precision is Precision.SINGLE else np.float64)


class ChargeLog:
    """A port's launch/transfer schedule, captured instead of priced.

    Attached to an :class:`ExecutionContext` as ``charge_log``, it turns
    every ``charge_*`` call into an append (each returns 0.0 simulated
    seconds, so the port's accumulators stay at zero): a run becomes a
    flat event stream over a deduplicated atom table.  The schedule is
    clock-independent — clocks change prices, never which kernels
    launch — so one capture serves every clock override of the cell.

    * ``atoms`` — unique priceable units: ``("gpu", LoweredKernel)``
      after lowering, or ``("cpu", KernelSpec, threads)``.
    * ``transfers`` — unique ``(nbytes, direction)`` copies.
    * ``events`` — the schedule, in charge order:
      ``(atom_index, overhead_seconds, transfer_index, counted)`` with
      ``-1`` marking the unused index.  ``counted`` is False only where
      the port discards the charge's return value (a copy whose cost is
      recorded in the counters but never reaches the port's simulated
      clock).
    """

    def __init__(self) -> None:
        self.atoms: list[tuple] = []
        self.transfers: list[tuple[int, str]] = []
        self.events: list[tuple[int, float, int, bool]] = []
        self._atom_index: dict[tuple, int] = {}
        self._xfer_index: dict[tuple[int, str], int] = {}
        self._lower_memo: dict[tuple, LoweredKernel] = {}

    def gpu_kernel(
        self,
        toolchain: "Toolchain",
        ctx: ExecutionContext,
        spec: KernelSpec,
        n_buffers: int,
        mapped_bytes: int,
    ) -> float:
        retargeted = toolchain.profile.retarget_penalty > 0 and ctx.platform.is_apu
        memo_key = (toolchain.profile, spec, retargeted)
        lowered = self._lower_memo.get(memo_key)
        if lowered is None:
            lowered = toolchain.profile.lower(spec, retargeted=retargeted)
            self._lower_memo[memo_key] = lowered
        key = ("gpu", lowered.cache_key())
        index = self._atom_index.get(key)
        if index is None:
            index = self._atom_index[key] = len(self.atoms)
            self.atoms.append(("gpu", lowered))
        overhead = toolchain.overheads.launch_cost(n_buffers, mapped_bytes)
        self.events.append((index, overhead, -1, True))
        return 0.0

    def cpu_loop(self, toolchain: "CPUToolchain", spec: KernelSpec) -> float:
        key = ("cpu", spec, toolchain.threads)
        index = self._atom_index.get(key)
        if index is None:
            index = self._atom_index[key] = len(self.atoms)
            self.atoms.append(("cpu", spec, toolchain.threads))
        self.events.append((index, toolchain.region_overhead_s, -1, True))
        return 0.0

    def transfer(self, nbytes: int, direction: str, counted: bool) -> float:
        key = (int(nbytes), direction)
        index = self._xfer_index.get(key)
        if index is None:
            index = self._xfer_index[key] = len(self.transfers)
            self.transfers.append(key)
        self.events.append((-1, 0.0, index, counted))
        return 0.0


class Toolchain:
    """A programming model bound to a platform: profile + runtime costs.

    Concrete models (OpenCL, C++ AMP, OpenACC, HC) supply the profile
    and per-platform overheads; the shared methods here charge kernel
    time and transfers to an :class:`ExecutionContext`.
    """

    def __init__(self, profile: CompilerProfile, overheads: RuntimeOverheads) -> None:
        self.profile = profile
        self.overheads = overheads

    @property
    def name(self) -> str:
        return self.profile.name

    def lower(self, spec: KernelSpec, retargeted: bool = False) -> LoweredKernel:
        return self.profile.lower(spec, retargeted=retargeted)

    def charge_gpu_kernel(
        self,
        ctx: ExecutionContext,
        spec: KernelSpec,
        n_buffers: int,
        mapped_bytes: int = 0,
    ) -> float:
        """Price one GPU kernel launch and record it; returns seconds."""
        if ctx.charge_log is not None:
            return ctx.charge_log.gpu_kernel(self, ctx, spec, n_buffers, mapped_bytes)
        # Hand-tuned toolchains (retarget_penalty > 0) are tuned for the
        # discrete GPU; running the same kernels on the APU pays the
        # performance-portability penalty.
        retargeted = self.profile.retarget_penalty > 0 and ctx.platform.is_apu
        lowered = self.lower(spec, retargeted=retargeted)
        timing = cached_time_gpu_kernel(lowered, ctx.platform.gpu, ctx.precision)
        ctx.counters.record_kernel(timing.record(ctx.platform.gpu.name))
        ctx.counters.flops += spec.ops.flops
        overhead = self.overheads.launch_cost(n_buffers, mapped_bytes)
        ctx.counters.launch_overhead_seconds += overhead
        rec = obs_spans.active()
        if rec is not None:
            plat = _platform_track(ctx)
            track = f"{plat}/gpu"
            rec.add(
                track, spec.name, "kernel", timing.seconds,
                limited_by=timing.limited_by,
                instructions=timing.instructions,
                dram_bytes=timing.dram_bytes,
                occupancy_waves=timing.occupancy_waves,
                model=self.name,
            )
            rec.add(
                track, f"launch:{spec.name}", "launch", overhead,
                n_buffers=n_buffers, mapped_bytes=mapped_bytes,
                **self.overheads.cost_components(n_buffers, mapped_bytes),
            )
            app = rec.meta.get("app", "")
            rec.metrics.histogram(
                "repro_kernel_seconds",
                help="Simulated per-launch kernel time.",
                app=app, model=self.name, device=plat,
            ).observe(timing.seconds)
            rec.metrics.counter(
                "repro_kernel_limited_by_total",
                help="Kernel launches by dominant limiter.",
                app=app, model=self.name, device=plat,
                limited_by=timing.limited_by,
            ).inc()
        return timing.seconds + overhead

    def charge_transfer(
        self, ctx: ExecutionContext, nbytes: int, direction: str, counted: bool = True
    ) -> float:
        """Price one host<->device copy; free on unified memory.

        ``counted=False`` flags call sites that discard the returned
        seconds (the cost is recorded in the counters either way); only
        schedule capture reads it.
        """
        if ctx.charge_log is not None:
            return ctx.charge_log.transfer(nbytes, direction, counted)
        seconds = ctx.platform.interconnect.transfer(nbytes, direction)
        joules = energy.transfer_joules(ctx.platform.interconnect.spec.active_w, seconds)
        ctx.counters.record_transfer(nbytes, seconds, direction, joules=joules)
        rec = obs_spans.active()
        if rec is not None:
            plat = _platform_track(ctx)
            rec.add(
                f"{plat}/interconnect", direction, "transfer", seconds,
                bytes=nbytes, model=self.name,
            )
            rec.metrics.counter(
                "repro_transfer_bytes_total",
                help="Host<->device bytes moved.",
                app=rec.meta.get("app", ""), model=self.name,
                device=plat, direction=direction,
            ).inc(nbytes)
        return seconds


class CPUToolchain:
    """Serial / OpenMP execution on the host CPU (the baseline)."""

    def __init__(self, name: str, threads: int, region_overhead_s: float = 0.0) -> None:
        self.name = name
        self.threads = threads
        self.region_overhead_s = region_overhead_s

    def charge_loop(self, ctx: ExecutionContext, spec: KernelSpec) -> float:
        """Price one parallel loop on the host; returns seconds."""
        if ctx.charge_log is not None:
            return ctx.charge_log.cpu_loop(self, spec)
        timing = cached_time_cpu_kernel(spec, ctx.platform.host, ctx.precision, threads=self.threads)
        ctx.counters.record_kernel(timing.record(ctx.platform.host.name))
        ctx.counters.flops += spec.ops.flops
        ctx.counters.launch_overhead_seconds += self.region_overhead_s
        rec = obs_spans.active()
        if rec is not None:
            plat = _platform_track(ctx)
            track = f"{plat}/host"
            rec.add(
                track, spec.name, "kernel", timing.seconds,
                limited_by=timing.limited_by, threads=self.threads, model=self.name,
            )
            if self.region_overhead_s:
                rec.add(track, f"region:{spec.name}", "launch", self.region_overhead_s)
            app = rec.meta.get("app", "")
            rec.metrics.histogram(
                "repro_kernel_seconds",
                help="Simulated per-launch kernel time.",
                app=app, model=self.name, device=plat,
            ).observe(timing.seconds)
            rec.metrics.counter(
                "repro_kernel_limited_by_total",
                help="Kernel launches by dominant limiter.",
                app=app, model=self.name, device=plat,
                limited_by=timing.limited_by,
            ).inc()
        return timing.seconds + self.region_overhead_s
