"""C++ AMP runtime (simulated CLAMP).

A Python rendering of the C++ AMP programming surface described in
Section III-C: ``extent`` / ``tiled_extent`` thread shapes,
``array_view`` wrappers whose synchronization the *runtime* manages,
``tile_static`` LDS declarations, and ``parallel_for_each`` lambda
launches.

Transfer semantics follow CLAMP v0.6.0 on each platform:

* **discrete GPU** — the runtime conservatively re-synchronizes every
  captured ``array_view`` around each launch: inputs are uploaded
  before, outputs downloaded after.  This is the per-launch transfer
  behaviour the paper blames for C++ AMP's dGPU losses.
* **APU (HSA v1.0 stack)** — ``array_view`` wraps the host pointer
  directly; no copies, no mapping toll.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ...engine.kernel import KernelSpec
from ...engine.launch import CPPAMP_APU, CPPAMP_DGPU, OPENMP_REGION_S
from ..base import CPUToolchain, ExecutionContext, Toolchain
from .compiler import CLAMP_BROKEN_KERNELS_DGPU, CPPAMP_PROFILE


class CompilerBug(RuntimeError):
    """Raised when CLAMP cannot compile a kernel for the target
    (the LULESH 27-of-28 situation)."""


@dataclass(frozen=True)
class extent:
    """``concurrency::extent<1>``: the shape of a compute domain."""

    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("extent must be positive")

    def tile(self, tile_size: int) -> "tiled_extent":
        """``extent::tile<N>()``: divide the domain into tiles."""
        return tiled_extent(size=self.size, tile_size=tile_size)


@dataclass(frozen=True)
class tiled_extent:
    """``concurrency::tiled_extent<N>``: a tiled compute domain."""

    size: int
    tile_size: int

    def __post_init__(self) -> None:
        if self.tile_size <= 0 or self.size % self.tile_size != 0:
            raise ValueError(
                f"domain of {self.size} does not divide into tiles of {self.tile_size}"
            )


class array_view:
    """``concurrency::array_view``: host data the runtime keeps in sync.

    The host constructs it over an existing NumPy array and keeps using
    that array; on the discrete GPU the runtime shadows it with a
    device copy and decides when to move data.
    """

    def __init__(self, runtime: "AmpRuntime", host: np.ndarray) -> None:
        self._runtime = runtime
        self.host = host
        self._device: np.ndarray | None = None
        self._device_fresh = False
        #: Whether a device image exists at all (drives synchronize()
        #: cost accounting identically in functional and projection
        #: modes).
        self._resident = False

    @property
    def nbytes(self) -> int:
        return self.host.nbytes

    def device_array(self) -> np.ndarray:
        """The array kernels operate on (the host array when unified)."""
        if self._runtime.unified or not self._runtime.ctx.execute_kernels:
            return self.host
        if self._device is None:
            self._device = self.host.copy()
        return self._device

    def discard_data(self) -> None:
        """``array_view::discard_data``: skip the next upload."""
        self._device_fresh = True
        self._resident = True
        if (
            not self._runtime.unified
            and self._runtime.ctx.execute_kernels
            and self._device is None
        ):
            self._device = np.empty_like(self.host)

    def synchronize(self) -> None:
        """``array_view::synchronize``: make the host copy current."""
        if self._runtime.unified or not self._resident:
            return
        if self._runtime.ctx.execute_kernels and self._device is not None:
            np.copyto(self.host, self._device)
        self._runtime._charge_transfer(self.nbytes, "d2h")


class AmpRuntime:
    """The C++ AMP accelerator + runtime for one execution context."""

    def __init__(self, ctx: ExecutionContext, workaround_known_bugs: bool = False) -> None:
        self.ctx = ctx
        self.unified = ctx.platform.is_apu
        self.toolchain = Toolchain(
            CPPAMP_PROFILE, CPPAMP_APU if self.unified else CPPAMP_DGPU
        )
        #: CLAMP v0.6.0 cannot compile these kernels for the dGPU.
        self.broken_kernels = frozenset() if (self.unified or workaround_known_bugs) else CLAMP_BROKEN_KERNELS_DGPU
        self.simulated_seconds = 0.0
        self._cpu_fallback = CPUToolchain("C++ AMP (CPU fallback)", threads=4, region_overhead_s=OPENMP_REGION_S)

    @property
    def accelerator_description(self) -> str:
        stack = "HSA v1.0" if self.unified else "AMD Catalyst v14.6"
        return f"{self.ctx.platform.gpu.name} via CLAMP v0.6.0 ({stack})"

    def _charge_transfer(self, nbytes: int, direction: str) -> None:
        self.simulated_seconds += self.toolchain.charge_transfer(self.ctx, nbytes, direction)

    def compiles(self, kernel_name: str) -> bool:
        """Whether CLAMP can generate device code for this kernel."""
        return kernel_name not in self.broken_kernels

    def parallel_for_each(
        self,
        compute_domain: extent | tiled_extent,
        func: Callable[..., None],
        spec: KernelSpec,
        views: Sequence[array_view],
        scalars: Sequence[object] = (),
        writes: Sequence[array_view] = (),
    ) -> None:
        """``parallel_for_each``: run the lambda over the domain.

        ``views`` are every ``array_view`` the lambda captures;
        ``writes`` are the subset it modifies.  Raises
        :class:`CompilerBug` for kernels CLAMP cannot build.
        """
        if not self.compiles(spec.name):
            raise CompilerBug(
                f"CLAMP v0.6.0: internal error compiling {spec.name!r} for "
                f"{self.ctx.platform.gpu.name}"
            )
        if isinstance(compute_domain, tiled_extent):
            if spec.lds_bytes_per_workgroup == 0:
                raise ValueError(
                    f"kernel {spec.name!r} launched on a tiled extent but "
                    "declares no tile_static storage"
                )
        # Conservative runtime-managed synchronization (dGPU only):
        # upload every captured view that is not already fresh.
        if not self.unified:
            for view in views:
                if not view._device_fresh:
                    if self.ctx.execute_kernels:
                        if view._device is None or view._device.shape != view.host.shape:
                            view._device = view.host.copy()
                        else:
                            np.copyto(view._device, view.host)
                    self._charge_transfer(view.nbytes, "h2d")
                    view._device_fresh = True
                    view._resident = True
        if self.ctx.execute_kernels:
            arrays = [view.device_array() for view in views]
            func(*arrays, *scalars)
        self.simulated_seconds += self.toolchain.charge_gpu_kernel(
            self.ctx, spec, n_buffers=len(views)
        )
        if not self.unified:
            # CLAMP eagerly writes results back to the host after every
            # launch instead of leaving them device-resident until the
            # host asks — the per-launch transfer behaviour the paper
            # blames for C++ AMP's dGPU losses.  The device copy stays
            # authoritative, so unchanged views need not re-upload.
            for view in writes:
                if self.ctx.execute_kernels:
                    np.copyto(view.host, view.device_array())
                self._charge_transfer(view.nbytes, "d2h")

    def cpu_fallback_loop(self, func: Callable[..., None], spec: KernelSpec, views: Sequence[array_view], scalars: Sequence[object] = ()) -> None:
        """Run a kernel on the host CPU because CLAMP could not build it.

        The paper's LULESH port did this for 1 of 28 kernels on the
        dGPU; every sibling view must round-trip so the CPU sees fresh
        data and the GPU sees the CPU's results.
        """
        for view in views:
            view.synchronize()
        if self.ctx.execute_kernels:
            func(*[view.host for view in views], *scalars)
        self.simulated_seconds += self._cpu_fallback.charge_loop(self.ctx, spec)
        for view in views:
            view._device_fresh = False
