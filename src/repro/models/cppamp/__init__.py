"""Simulated C++ AMP (CLAMP v0.6.0).

Usage mirrors C++ AMP source::

    rt = amp.AmpRuntime(ctx)
    in_view = amp.array_view(rt, a)
    out_view = amp.array_view(rt, out)
    out_view.discard_data()
    rt.parallel_for_each(
        amp.extent(n_threads).tile(256),
        kernel_func, spec,
        views=[in_view, out_view], writes=[out_view],
    )
    out_view.synchronize()
"""

from .amp import AmpRuntime, CompilerBug, array_view, extent, tiled_extent
from .compiler import CLAMP_BROKEN_KERNELS_DGPU, CPPAMP_PROFILE

__all__ = [
    "AmpRuntime",
    "CLAMP_BROKEN_KERNELS_DGPU",
    "CompilerBug",
    "CPPAMP_PROFILE",
    "array_view",
    "extent",
    "tiled_extent",
]
