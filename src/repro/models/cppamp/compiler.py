"""C++ AMP toolchain profile (CLAMP v0.6.0, Table III).

C++ AMP sits between OpenCL and OpenACC in Figure 11: tiling gives it
LDS access and fine-grained synchronization (``tile_static`` +
``tile_barrier``), but explicit unrolling and code-motion reduction are
missing, and the CLAMP 0.6.0 code generator is measurably behind
hand-written kernels (1.3x on the read-memory benchmark).

On the discrete GPU the runtime manages transfers conservatively —
the paper's "single biggest reason for poor performance" — and one
LULESH kernel failed to compile outright (Sec. VI-A), modelled here as
a named known-bad kernel list.
"""

from __future__ import annotations

from ..base import Capability, CompilerProfile, TransferPolicy

CPPAMP_PROFILE = CompilerProfile(
    name="C++ AMP",
    version="CLAMP v0.6.0",
    capabilities=Capability.VECTORIZE | Capability.LDS | Capability.FINE_SYNC,
    transfer_policy=TransferPolicy.COMPILER_PER_LAUNCH,
    vector_efficiency_regular=0.85,
    vector_efficiency_irregular=0.72,
    memory_efficiency=0.78,
)

#: Kernels CLAMP v0.6.0 fails to compile for the discrete GPU
#: ("we were able to implement only 27 out of the 28 kernels on the
#: GPU due to a compiler bug; one kernel was implemented on the CPU
#: which led to data-transfer overhead").
CLAMP_BROKEN_KERNELS_DGPU = frozenset({"lulesh.calc_kinematics"})
