"""Programming-model runtimes.

One subpackage/module per model of the study:

* :mod:`repro.models.opencl` — explicit host API + hand-tuned kernels.
* :mod:`repro.models.cppamp` — CLAMP C++ AMP: ``array_view`` +
  ``parallel_for_each`` with runtime-managed transfers.
* :mod:`repro.models.openacc` — PGI OpenACC: ``kernels loop`` and
  ``data`` directives.
* :mod:`repro.models.openmp` / :mod:`repro.models.serial` — the CPU
  baselines.
* :mod:`repro.models.hc` — Section VII's Heterogeneous Compute.
* :mod:`repro.models.omp_offload` — OpenMP target offload, the
  second-vendor directive model of the V100 study family.
"""

from . import cppamp, omp_offload, openacc, opencl
from .base import (
    Capability,
    CompilerProfile,
    CPUToolchain,
    ExecutionContext,
    Toolchain,
    TransferPolicy,
)
from .hc import HC_PROFILE, HCRuntime
from .omp_offload import OMP_OFFLOAD_PROFILE, OpenMPOffload
from .openmp import OpenMP
from .registry import (
    GPU_MODEL_NAMES,
    MODEL_ALIASES,
    PROFILES,
    CompilerEntry,
    normalize_model_name,
    omp_offload_rows,
    profile_for,
    table3_rows,
)
from .serial import SerialCPU

__all__ = [
    "Capability",
    "CompilerEntry",
    "CompilerProfile",
    "CPUToolchain",
    "ExecutionContext",
    "GPU_MODEL_NAMES",
    "HC_PROFILE",
    "HCRuntime",
    "MODEL_ALIASES",
    "OMP_OFFLOAD_PROFILE",
    "OpenMP",
    "OpenMPOffload",
    "PROFILES",
    "SerialCPU",
    "Toolchain",
    "TransferPolicy",
    "cppamp",
    "normalize_model_name",
    "omp_offload",
    "omp_offload_rows",
    "openacc",
    "opencl",
    "profile_for",
    "table3_rows",
]
