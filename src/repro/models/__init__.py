"""Programming-model runtimes.

One subpackage/module per model of the study:

* :mod:`repro.models.opencl` — explicit host API + hand-tuned kernels.
* :mod:`repro.models.cppamp` — CLAMP C++ AMP: ``array_view`` +
  ``parallel_for_each`` with runtime-managed transfers.
* :mod:`repro.models.openacc` — PGI OpenACC: ``kernels loop`` and
  ``data`` directives.
* :mod:`repro.models.openmp` / :mod:`repro.models.serial` — the CPU
  baselines.
* :mod:`repro.models.hc` — Section VII's Heterogeneous Compute.
"""

from . import cppamp, openacc, opencl
from .base import (
    Capability,
    CompilerProfile,
    CPUToolchain,
    ExecutionContext,
    Toolchain,
    TransferPolicy,
)
from .hc import HC_PROFILE, HCRuntime
from .openmp import OpenMP
from .registry import GPU_MODEL_NAMES, PROFILES, CompilerEntry, profile_for, table3_rows
from .serial import SerialCPU

__all__ = [
    "Capability",
    "CompilerEntry",
    "CompilerProfile",
    "CPUToolchain",
    "ExecutionContext",
    "GPU_MODEL_NAMES",
    "HC_PROFILE",
    "HCRuntime",
    "OpenMP",
    "PROFILES",
    "SerialCPU",
    "Toolchain",
    "TransferPolicy",
    "cppamp",
    "openacc",
    "opencl",
    "profile_for",
    "table3_rows",
]
