"""Heterogeneous Compute (HC) — Section VII's "best of both worlds".

The paper closes by introducing AMD's Heterogeneous Compute: a
single-source C++ model with C++ AMP's productivity and OpenCL's
control — explicit, asynchronous data transfers, raw pointers in
kernel code, platform atomics and offline compilation.

We model HC as: full optimization capability (it inherits OpenCL's
tuning surface), near-hand-tuned code generation, explicit transfers,
and HSA-grade dispatch overheads.  The ablation benchmark
(``benchmarks/test_ablation_hc.py``) uses it to quantify the paper's
claim that explicit transfers were the single biggest performance gap
of the emerging models.

**Asynchronous transfers** (the Sec. VII feature that "help[s] in
overlapping kernel execution with data-transfers, resulting in further
speedup") are modeled with two timelines: a copy stream and a compute
stream.  ``async_copy_to_device`` advances only the copy stream; a
``launch`` whose inputs are still in flight waits for them, otherwise
it overlaps with outstanding copies.  ``finish()`` (and
``simulated_seconds``) report the makespan of the two streams.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..engine.kernel import KernelSpec
from ..engine.launch import HC_APU, HC_DGPU
from .base import Capability, CompilerProfile, ExecutionContext, Toolchain, TransferPolicy

HC_PROFILE = CompilerProfile(
    name="Heterogeneous Compute",
    version="HC (pre-release, Sec. VII)",
    capabilities=Capability.all(),
    transfer_policy=TransferPolicy.EXPLICIT,
    vector_efficiency_regular=0.95,
    vector_efficiency_irregular=0.88,
    memory_efficiency=0.95,
    divergence_reduction=0.4,
)


class HCRuntime:
    """Single-source kernels over raw pointers with explicit staging.

    Two simulated hardware queues: the DMA (copy) stream and the
    compute stream.  Synchronous calls join the streams; asynchronous
    copies run ahead on the copy stream, and launches synchronize only
    with the readiness of the arrays they actually touch.
    """

    def __init__(self, ctx: ExecutionContext) -> None:
        self.ctx = ctx
        self.unified = ctx.platform.is_apu
        self.toolchain = Toolchain(HC_PROFILE, HC_APU if self.unified else HC_DGPU)
        self._device: dict[int, np.ndarray] = {}
        self._copy_time = 0.0
        self._compute_time = 0.0
        #: When each staged array's device copy becomes usable.
        self._ready: dict[int, float] = {}

    @property
    def simulated_seconds(self) -> float:
        """Makespan of the copy and compute streams."""
        return max(self._copy_time, self._compute_time)

    def finish(self) -> float:
        """Drain both streams; returns the total simulated seconds."""
        drained = self.simulated_seconds
        self._copy_time = self._compute_time = drained
        return drained

    # -- staging -------------------------------------------------------

    def _stage(self, host: np.ndarray) -> np.ndarray:
        if not self.ctx.execute_kernels:
            self._device[id(host)] = host
            return host
        device = self._device.get(id(host))
        if device is None:
            device = host.copy()
            self._device[id(host)] = device
        else:
            np.copyto(device, host)
        return device

    def copy_to_device(self, host: np.ndarray) -> np.ndarray:
        """Synchronous host->device copy; raw pointer on the APU."""
        if self.unified:
            self._ready[id(host)] = 0.0
            return host
        device = self._stage(host)
        seconds = self.toolchain.charge_transfer(self.ctx, host.nbytes, "h2d")
        done = max(self._copy_time, self._compute_time) + seconds
        self._copy_time = self._compute_time = done
        self._ready[id(host)] = done
        return device

    def async_copy_to_device(self, host: np.ndarray) -> np.ndarray:
        """Asynchronous host->device copy on the DMA stream.

        Returns immediately in simulated time; kernels that read the
        array wait for it, everything else overlaps.
        """
        if self.unified:
            self._ready[id(host)] = 0.0
            return host
        device = self._stage(host)
        seconds = self.toolchain.charge_transfer(self.ctx, host.nbytes, "h2d")
        self._copy_time += seconds
        self._ready[id(host)] = self._copy_time
        return device

    def device_alloc(self, host: np.ndarray) -> np.ndarray:
        """Allocate device storage for an output array without copying
        (the ``CL_MEM_WRITE_ONLY`` idiom: results only ever come back)."""
        if self.unified:
            self._ready[id(host)] = 0.0
            return host
        if not self.ctx.execute_kernels:
            self._device[id(host)] = host
            self._ready[id(host)] = 0.0
            return host
        device = self._device.get(id(host))
        if device is None:
            device = np.empty_like(host)
            self._device[id(host)] = device
        self._ready[id(host)] = 0.0
        return device

    def copy_to_host(self, host: np.ndarray) -> None:
        """Synchronous device->host copy of a previously staged array."""
        if self.unified:
            return
        device = self._device.get(id(host))
        if device is None:
            raise RuntimeError("copy_to_host of an array never staged to the device")
        if self.ctx.execute_kernels and device is not host:
            np.copyto(host, device)
        seconds = self.toolchain.charge_transfer(self.ctx, host.nbytes, "d2h")
        done = max(self._copy_time, self._compute_time) + seconds
        self._copy_time = self._compute_time = done

    def device_view(self, host: np.ndarray) -> np.ndarray:
        """The device-side array for a staged host array."""
        if self.unified:
            return host
        device = self._device.get(id(host))
        if device is None:
            raise RuntimeError("array not resident; call copy_to_device first")
        return device

    # -- execution -------------------------------------------------------

    def launch(
        self,
        func: Callable[..., None],
        spec: KernelSpec,
        arrays: Sequence[np.ndarray],
        scalars: Sequence[object] = (),
    ) -> None:
        """Launch a kernel over raw device pointers.

        Starts as soon as the compute stream is free *and* every input
        array's copy has landed — outstanding async copies of other
        arrays keep flowing underneath.
        """
        for a in arrays:
            if not self.unified and id(a) not in self._device:
                raise RuntimeError("array not resident; call copy_to_device first")
        if self.ctx.execute_kernels:
            device_arrays = [self.device_view(a) for a in arrays]
            func(*device_arrays, *scalars)
        seconds = self.toolchain.charge_gpu_kernel(self.ctx, spec, n_buffers=len(arrays))
        start = self._compute_time
        for a in arrays:
            start = max(start, self._ready.get(id(a), 0.0))
        self._compute_time = start + seconds
