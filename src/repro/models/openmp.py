"""OpenMP CPU runtime — the paper's baseline.

Figures 8 and 9 report every speedup relative to a 4-core OpenMP CPU
implementation.  Porting serial code to OpenMP is one pragma per loop
(Figure 3b), which is why Table IV's OpenMP column is tiny.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..engine.kernel import KernelSpec
from ..engine.launch import OPENMP_REGION_S
from .base import CPUToolchain, ExecutionContext


class OpenMP:
    """``#pragma omp parallel for`` over host arrays."""

    def __init__(self, ctx: ExecutionContext, num_threads: int = 4) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.ctx = ctx
        self.num_threads = min(num_threads, ctx.platform.host.spec.cores)
        self.toolchain = CPUToolchain(
            "OpenMP", threads=self.num_threads, region_overhead_s=OPENMP_REGION_S
        )
        self.simulated_seconds = 0.0

    def parallel_for(
        self,
        func: Callable[..., None],
        spec: KernelSpec,
        arrays: Sequence[np.ndarray],
        scalars: Sequence[object] = (),
    ) -> None:
        """Run one annotated loop nest across the team of threads."""
        if self.ctx.execute_kernels:
            func(*arrays, *scalars)
        self.simulated_seconds += self.toolchain.charge_loop(self.ctx, spec)
