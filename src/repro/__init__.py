"""repro: a full reproduction of "Exploring Parallel Programming
Models for Heterogeneous Computing Systems" (Daga, Tschirhart &
Freitag, IISWC 2015) as a simulated heterogeneous-computing stack.

The package layers:

* :mod:`repro.hardware` — the paper's testbed as device models (AMD
  Radeon R9 280X discrete GPU, AMD A10-7850K APU, Table II).
* :mod:`repro.engine` — kernel IR, roofline+occupancy timing, cache
  simulation and an event-driven wavefront scheduler.
* :mod:`repro.models` — programming-model runtimes with the paper's
  API shapes: OpenCL, C++ AMP (CLAMP), OpenACC (PGI), OpenMP, serial
  and Heterogeneous Compute (Sec. VII).
* :mod:`repro.apps` — the five workloads, each implemented for real
  (NumPy numerics) and ported to every model: read-memory, LULESH,
  CoMD, XSBench, miniFE.
* :mod:`repro.sloc` — the SLOCCount-equivalent behind Table IV.
* :mod:`repro.core` — the comparison study, frequency sweeps,
  characterization, productivity (Eq. 1) and paper-style reports.

Quick start::

    from repro import run_study, ALL_APPS, bench_configs, Precision
    study = run_study(ALL_APPS, configs=bench_configs())
    print(study.speedups("CoMD", apu=False, precision=Precision.SINGLE))
"""

from .apps import ALL_APPS, APPS_BY_NAME, PROXY_APPS, ProxyApp, RunResult
from .exec import (
    CheckpointJournal,
    ExecutionInterrupted,
    FaultPlan,
    RetryPolicy,
    RunError,
    parse_fault_plan,
)
from .core import (
    GPU_MODELS,
    StudyResult,
    SweepResult,
    bench_configs,
    characterize,
    compute_productivity,
    feature_matrix,
    harmonic_mean,
    run_study,
    run_sweep,
    speedup,
    sweep_configs,
)
from .hardware import Platform, Precision, make_apu_platform, make_dgpu_platform
from .models import ExecutionContext

__version__ = "1.0.0"

__all__ = [
    "ALL_APPS",
    "APPS_BY_NAME",
    "CheckpointJournal",
    "ExecutionContext",
    "ExecutionInterrupted",
    "FaultPlan",
    "GPU_MODELS",
    "RetryPolicy",
    "RunError",
    "parse_fault_plan",
    "PROXY_APPS",
    "Platform",
    "Precision",
    "ProxyApp",
    "RunResult",
    "StudyResult",
    "SweepResult",
    "__version__",
    "bench_configs",
    "characterize",
    "compute_productivity",
    "feature_matrix",
    "harmonic_mean",
    "make_apu_platform",
    "make_dgpu_platform",
    "run_study",
    "run_sweep",
    "speedup",
    "sweep_configs",
]
