"""Cross-cutting observability: spans, metrics, and trace exporters.

The simulator's credibility rests on *where time goes* — kernel vs.
transfer vs. launch overhead is what separates the programming models
in Figures 8/9 — so every charged cost can be captured as a span on
the simulated clock and every notable occurrence (memo hit, shard
dispatch) as an instant event.  Three layers:

* :mod:`repro.obs.spans` — the recorder.  Engine and model code report
  to the *active* recorder; when none is installed (the default) each
  instrumentation site is a single global read and ``None`` check, so
  disabled telemetry is free and can never perturb results.
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  histograms, exportable as JSON or Prometheus text exposition.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (open in
  Perfetto / ``chrome://tracing``), timeline merging, and plain-text
  top-N breakdown reports.
* :mod:`repro.obs.tracing` — request-scoped *distributed* tracing:
  W3C-``traceparent`` trace/span ids propagated through the serve
  tier's event loop, batcher, engine thread and pool workers, with a
  tail-biased store of finished traces behind ``/v1/debug/traces``.
* :mod:`repro.obs.logging` — structured JSON log records on stderr
  plus a bounded in-process ring (``/v1/debug/logs``).

Entry point: ``repro profile <figure|study>`` or the ``--trace`` /
``--metrics`` flags on any study-backed CLI command.
"""

from .export import (
    Timeline,
    chrome_trace,
    merge_run_telemetry,
    top_breakdown,
    write_chrome_trace,
    write_metrics,
)
from .logging import RING, LogRing, StructuredLogger, get_logger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import (
    InstantEvent,
    NullRecorder,
    RunTelemetry,
    Span,
    SpanRecorder,
    active,
    recording,
)
from .tracing import (
    TRACER,
    SpanContext,
    TraceRecord,
    TraceSpan,
    TraceStore,
    Tracer,
    parse_traceparent,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "LogRing",
    "MetricsRegistry",
    "NullRecorder",
    "RING",
    "RunTelemetry",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "StructuredLogger",
    "TRACER",
    "Timeline",
    "TraceRecord",
    "TraceSpan",
    "TraceStore",
    "Tracer",
    "active",
    "chrome_trace",
    "get_logger",
    "merge_run_telemetry",
    "parse_traceparent",
    "recording",
    "top_breakdown",
    "write_chrome_trace",
    "write_metrics",
]
