"""Request-scoped distributed tracing over the span layer.

The PR-2 span layer answers "where does *simulated* time go inside one
run"; this module answers "where does *wall* time go for one request"
as it crosses the serving stack: the asyncio server, the batcher's
queue and window, the single-flight leader/follower split, the backend
engine thread, and (for batch studies) the executor's pool workers.

The pieces mirror W3C Trace Context:

* :class:`SpanContext` — a ``(trace_id, span_id)`` pair, carried on the
  wire as a ``traceparent`` header (``00-<32 hex>-<16 hex>-01``) and
  in-process as a :mod:`contextvars` variable (:func:`current`,
  :func:`use`).  Context crosses threads explicitly (the batcher
  installs each spec's context around its backend work) and crosses
  process boundaries as a serialized header (the executor hands pool
  workers a ``traceparent``; their spans come back re-based in the
  :class:`~repro.obs.spans.RunTelemetry` envelope and are re-parented
  on merge).
* :class:`TraceSpan` — one timed extent with explicit parentage.
  Times are host ``perf_counter`` seconds, comparable across threads
  of one process; cross-process spans are re-based to their run's
  origin and shifted on merge.
* :class:`Tracer` — starts/finishes spans into bounded per-trace
  buffers; :meth:`Tracer.complete` seals a trace into the
  :class:`TraceStore`.
* :class:`TraceStore` — tail-biased retention of finished traces: a
  ring of recent ones, plus the slowest and every server-error trace
  always kept, for ``/v1/debug/traces``.

Determinism: tracing is purely observational (results are asserted
bit-identical with it on or off), and batch-study span *identities*
are deterministic — :func:`derived_span_id` derives span ids from
content (trace id, parent, name, spec key), so the same plan yields
the identical span tree at any worker count.
"""

from __future__ import annotations

import hashlib
import os
import re
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

#: Segment names the serve tier records; the breakdown tooling and the
#: docs key off this vocabulary.
SEGMENTS = (
    "handle", "serialize", "queue_wait", "batch_wait", "coalesced_wait",
    "engine", "singleflight_wait",
)

_TRACEPARENT_RE = re.compile(r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")


def new_trace_id() -> str:
    """A fresh random 16-byte trace id (32 lowercase hex chars)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh random 8-byte span id (16 lowercase hex chars)."""
    return os.urandom(8).hex()


def seeded_trace_id(seed: str) -> str:
    """A deterministic trace id from a seed string (tests, replays)."""
    return hashlib.sha256(f"trace:{seed}".encode()).hexdigest()[:32]


def derived_span_id(*parts: str) -> str:
    """A deterministic span id from content.

    Batch-study spans derive their ids from ``(trace id, parent span
    id, name, spec content key)`` so the same plan produces the same
    span tree — ids included — at any worker count.
    """
    digest = hashlib.sha256("\x1f".join(parts).encode()).hexdigest()
    return digest[:16]


@dataclass(frozen=True)
class SpanContext:
    """The propagated identity: which trace, and which parent span."""

    trace_id: str
    span_id: str

    def to_traceparent(self) -> str:
        return f"00-{self.trace_id}-{self.span_id}-01"


def parse_traceparent(header: str | None) -> SpanContext | None:
    """Parse a ``traceparent`` header; ``None`` when absent/malformed.

    Lenient by design: a bad header starts a fresh trace instead of
    failing the request.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    trace_id, span_id, _flags = match.groups()
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return SpanContext(trace_id=trace_id, span_id=span_id)


@dataclass
class TraceSpan:
    """One timed extent of one trace.

    ``start_s``/``end_s`` are ``perf_counter`` seconds in the recording
    process; :meth:`rebased` / :meth:`shifted` move spans between clock
    origins when they cross process boundaries.  Plain data throughout,
    so spans pickle inside :class:`~repro.obs.spans.RunTelemetry`.
    """

    trace_id: str
    span_id: str
    parent_id: str  # "" for a root span
    name: str
    kind: str = "internal"  # "server" | "batcher" | "engine" | "worker" | "segment" | ...
    start_s: float = 0.0
    end_s: float = 0.0
    attrs: dict = field(default_factory=dict)
    status: str = "ok"

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def rebased(self, origin_s: float) -> "TraceSpan":
        """The same span with times relative to ``origin_s``."""
        return replace(self, start_s=self.start_s - origin_s, end_s=self.end_s - origin_s)

    def shifted(self, offset_s: float) -> "TraceSpan":
        """The same span displaced by ``offset_s`` (merge re-basing)."""
        return replace(self, start_s=self.start_s + offset_s, end_s=self.end_s + offset_s)

    def to_json(self, origin_s: float = 0.0) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start_us": round((self.start_s - origin_s) * 1e6, 3),
            "duration_us": round(self.duration_s * 1e6, 3),
            "status": self.status,
            "attrs": dict(self.attrs),
        }


@dataclass(frozen=True)
class TraceRecord:
    """One finished trace: its spans plus a summary row."""

    trace_id: str
    route: str
    status: int
    duration_s: float
    started_unix: float
    spans: tuple[TraceSpan, ...]

    @property
    def root(self) -> TraceSpan | None:
        ids = {span.span_id for span in self.spans}
        for span in self.spans:
            if not span.parent_id or span.parent_id not in ids:
                return span
        return None

    def summary(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "route": self.route,
            "status": self.status,
            "duration_ms": round(self.duration_s * 1e3, 4),
            "started_unix": self.started_unix,
            "spans": len(self.spans),
        }

    def to_json(self) -> dict:
        root = self.root
        origin = root.start_s if root is not None else min(
            (span.start_s for span in self.spans), default=0.0
        )
        ordered = sorted(self.spans, key=lambda s: (s.start_s, s.span_id))
        doc = self.summary()
        doc["segments_ms"] = {
            name: round(seconds * 1e3, 4)
            for name, seconds in sorted(segment_durations(self.spans).items())
        }
        doc["spans"] = [span.to_json(origin) for span in ordered]
        return doc


class TraceStore:
    """Tail-biased retention of finished traces.

    Three overlapping holds, each reference-counted so a trace lives
    while *any* of them wants it: a ring of the ``recent_cap`` most
    recent traces, the ``slow_cap`` slowest ever seen, and the
    ``error_cap`` most recent server errors (status >= 500).  The
    interesting traces — the tail and the failures — therefore survive
    long after the steady-state traffic that followed them.
    """

    def __init__(self, recent_cap: int = 128, slow_cap: int = 32, error_cap: int = 32) -> None:
        self.recent_cap = recent_cap
        self.slow_cap = slow_cap
        self.error_cap = error_cap
        self._lock = threading.Lock()
        self._records: dict[str, TraceRecord] = {}
        self._refs: dict[str, int] = {}
        self._recent: deque[str] = deque()
        self._slow: list[tuple[float, str]] = []  # sorted ascending by duration
        self._errors: deque[str] = deque()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def _retain(self, trace_id: str) -> None:
        self._refs[trace_id] = self._refs.get(trace_id, 0) + 1

    def _release(self, trace_id: str) -> None:
        self._refs[trace_id] -= 1
        if self._refs[trace_id] <= 0:
            self._refs.pop(trace_id, None)
            self._records.pop(trace_id, None)

    def add(self, record: TraceRecord) -> None:
        with self._lock:
            if record.trace_id in self._records:
                # A replayed trace id replaces its record; holds remain.
                self._records[record.trace_id] = record
                return
            self._records[record.trace_id] = record
            self._refs[record.trace_id] = 0

            self._recent.append(record.trace_id)
            self._retain(record.trace_id)
            if len(self._recent) > self.recent_cap:
                self._release(self._recent.popleft())

            if record.status >= 500:
                self._errors.append(record.trace_id)
                self._retain(record.trace_id)
                if len(self._errors) > self.error_cap:
                    self._release(self._errors.popleft())

            if self.slow_cap > 0:
                self._slow.append((record.duration_s, record.trace_id))
                self._retain(record.trace_id)
                self._slow.sort(key=lambda item: item[0])
                if len(self._slow) > self.slow_cap:
                    _duration, evicted = self._slow.pop(0)
                    self._release(evicted)

    def get(self, trace_id: str) -> TraceRecord | None:
        with self._lock:
            return self._records.get(trace_id)

    def holds(self, trace_id: str) -> tuple[str, ...]:
        """Which retention holds keep a trace alive (for summaries)."""
        with self._lock:
            holds = []
            if trace_id in self._recent:
                holds.append("recent")
            if any(held == trace_id for _d, held in self._slow):
                holds.append("slowest")
            if trace_id in self._errors:
                holds.append("error")
            return tuple(holds)

    def records(self) -> list[TraceRecord]:
        """All retained traces, most recently started first."""
        with self._lock:
            return sorted(
                self._records.values(),
                key=lambda r: r.started_unix,
                reverse=True,
            )

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._refs.clear()
            self._recent.clear()
            self._slow.clear()
            self._errors.clear()


class Tracer:
    """Starts, finishes and buffers spans; seals traces into the store.

    Spans accumulate in bounded per-trace buffers (a late span for an
    already-completed trace — e.g. an engine run finishing after its
    request's deadline — lands in a fresh buffer and ages out instead
    of leaking).  All methods are thread-safe; span *creation* is just
    object construction, so instrumentation stays cheap.
    """

    def __init__(
        self,
        store: TraceStore | None = None,
        max_buffered_traces: int = 256,
        max_spans_per_trace: int = 512,
    ) -> None:
        self.store = store if store is not None else TraceStore()
        self.max_buffered_traces = max_buffered_traces
        self.max_spans_per_trace = max_spans_per_trace
        self.dropped = 0
        self._lock = threading.Lock()
        self._buffers: OrderedDict[str, list[TraceSpan]] = OrderedDict()

    # -- span lifecycle ------------------------------------------------

    def start_span(
        self,
        name: str,
        kind: str = "internal",
        parent: SpanContext | None = None,
        trace_id: str | None = None,
        span_id: str | None = None,
        attrs: dict | None = None,
    ) -> TraceSpan:
        """Begin a span now; it is buffered on :meth:`finish_span`."""
        if parent is not None:
            trace = parent.trace_id
            parent_id = parent.span_id
        else:
            trace = trace_id if trace_id is not None else new_trace_id()
            parent_id = ""
        return TraceSpan(
            trace_id=trace,
            span_id=span_id if span_id is not None else new_span_id(),
            parent_id=parent_id,
            name=name,
            kind=kind,
            start_s=time.perf_counter(),
            attrs=dict(attrs or {}),
        )

    def finish_span(self, span: TraceSpan, status: str = "ok") -> TraceSpan:
        span.end_s = time.perf_counter()
        span.status = status
        self.emit(span)
        return span

    def emit(self, span: TraceSpan) -> None:
        """Buffer an already-finished (possibly retroactive) span."""
        with self._lock:
            buffer = self._buffers.get(span.trace_id)
            if buffer is None:
                buffer = self._buffers[span.trace_id] = []
                while len(self._buffers) > self.max_buffered_traces:
                    self._buffers.popitem(last=False)
                    self.dropped += 1
            if len(buffer) >= self.max_spans_per_trace:
                self.dropped += 1
                return
            buffer.append(span)

    def record(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: SpanContext,
        kind: str = "segment",
        attrs: dict | None = None,
        span_id: str | None = None,
    ) -> TraceSpan:
        """Emit a retroactive span from measured boundary timestamps."""
        span = TraceSpan(
            trace_id=parent.trace_id,
            span_id=span_id if span_id is not None else new_span_id(),
            parent_id=parent.span_id,
            name=name,
            kind=kind,
            start_s=start_s,
            end_s=end_s,
            attrs=dict(attrs or {}),
        )
        self.emit(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        kind: str = "internal",
        parent: SpanContext | None = None,
        attrs: dict | None = None,
        set_current: bool = True,
        span_id: str | None = None,
    ) -> Iterator[TraceSpan]:
        """Bracket a block in a span, installing it as the current
        context (so nested instrumentation parents correctly)."""
        if parent is None:
            parent = current()
        span = self.start_span(name, kind=kind, parent=parent, attrs=attrs, span_id=span_id)
        token = push(span.context) if set_current else None
        try:
            yield span
        finally:
            if token is not None:
                reset(token)
            self.finish_span(span)

    # -- trace lifecycle -----------------------------------------------

    def pending_spans(self, trace_id: str) -> list[TraceSpan]:
        with self._lock:
            return list(self._buffers.get(trace_id, ()))

    def complete(
        self,
        trace_id: str,
        route: str = "",
        status: int = 0,
        duration_s: float | None = None,
        started_unix: float | None = None,
    ) -> TraceRecord | None:
        """Seal a trace: pop its buffered spans into the store."""
        with self._lock:
            spans = self._buffers.pop(trace_id, None)
        if not spans:
            return None
        if duration_s is None:
            duration_s = max(span.end_s for span in spans) - min(
                span.start_s for span in spans
            )
        record = TraceRecord(
            trace_id=trace_id,
            route=route,
            status=status,
            duration_s=duration_s,
            started_unix=started_unix if started_unix is not None else time.time(),
            spans=tuple(spans),
        )
        self.store.add(record)
        return record

    def clear(self) -> None:
        with self._lock:
            self._buffers.clear()
            self.dropped = 0
        self.store.clear()


#: The process-global tracer (and, via ``TRACER.store``, trace ring).
#: The serve tier and the executor both record here; tests may clear.
TRACER = Tracer()


# -- ambient context ----------------------------------------------------

_CURRENT: ContextVar[SpanContext | None] = ContextVar("repro_trace_context", default=None)


def current() -> SpanContext | None:
    """The ambient span context, or ``None`` outside any trace."""
    return _CURRENT.get()


def push(ctx: SpanContext | None):
    """Install ``ctx`` as the ambient context; returns a reset token."""
    return _CURRENT.set(ctx)


def reset(token) -> None:
    _CURRENT.reset(token)


@contextmanager
def use(ctx: SpanContext | None) -> Iterator[None]:
    """Ambient-context block (threads get their own context, so the
    batcher's backend thread installs each spec's context this way)."""
    token = push(ctx)
    try:
        yield
    finally:
        reset(token)


# -- tree utilities -----------------------------------------------------


def children_of(spans: Sequence[TraceSpan]) -> dict[str, list[TraceSpan]]:
    """Spans grouped by parent id, each group in start order."""
    grouped: dict[str, list[TraceSpan]] = {}
    for span in spans:
        grouped.setdefault(span.parent_id, []).append(span)
    for group in grouped.values():
        group.sort(key=lambda s: (s.start_s, s.span_id))
    return grouped


def orphan_spans(spans: Sequence[TraceSpan]) -> list[TraceSpan]:
    """Spans not reachable from any root of the tree.

    A root is a span with no parent, or one parented on a context from
    outside the span set (an inbound ``traceparent``, or a study's root
    created by the caller).  Everything else must chain up to a root;
    cycles and self-parented spans are orphans.
    """
    ids = {span.span_id for span in spans}
    by_parent: dict[str, list[TraceSpan]] = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)
    reachable: set[str] = set()
    stack = [
        span for span in spans
        if not span.parent_id
        or (span.parent_id not in ids)
    ]
    while stack:
        span = stack.pop()
        if span.span_id in reachable:
            continue
        reachable.add(span.span_id)
        stack.extend(by_parent.get(span.span_id, ()))
    return [span for span in spans if span.span_id not in reachable]


def tree_signature(spans: Sequence[TraceSpan]) -> tuple[tuple[str, str, str], ...]:
    """Canonical identity of a span tree: sorted (id, parent, name).

    Durations and wall placement vary run to run; the signature is what
    the determinism tests compare across worker counts.
    """
    return tuple(sorted((s.span_id, s.parent_id, s.name) for s in spans))


def segment_durations(spans: Sequence[TraceSpan]) -> dict[str, float]:
    """Wall seconds per segment-kind span name (queue_wait, engine, ...).

    Overlapping same-name intervals are union-merged: a request whose
    model and baseline legs share one coalesced engine window charges
    that window once, so no per-name total can exceed the request's
    own wall time.
    """
    intervals: dict[str, list[tuple[float, float]]] = {}
    for span in spans:
        if span.kind == "segment":
            intervals.setdefault(span.name, []).append((span.start_s, span.end_s))
    totals: dict[str, float] = {}
    for name, windows in intervals.items():
        windows.sort()
        total = 0.0
        merged_start, merged_end = windows[0]
        for start, end in windows[1:]:
            if start > merged_end:
                total += merged_end - merged_start
                merged_start, merged_end = start, end
            else:
                merged_end = max(merged_end, end)
        totals[name] = total + (merged_end - merged_start)
    return totals


def trace_timeline(record: TraceRecord):
    """A trace as an :class:`~repro.obs.export.Timeline` so the existing
    Chrome-trace exporter can render it (one track per span kind)."""
    from .export import Timeline
    from .spans import Span

    root = record.root
    origin = root.start_s if root is not None else min(
        (span.start_s for span in record.spans), default=0.0
    )
    timeline = Timeline()
    for span in record.spans:
        start = span.start_s - origin
        end = span.end_s - origin
        timeline.spans.append(
            Span(
                name=span.name,
                category=span.kind,
                track=span.kind,
                sim_start=start,
                sim_end=end,
                wall_start=start,
                wall_end=end,
                args=tuple(sorted(
                    {**span.attrs, "span_id": span.span_id,
                     "parent_id": span.parent_id}.items()
                )),
            )
        )
    return timeline
