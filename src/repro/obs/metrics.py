"""Metrics registry: counters, gauges and histograms.

The quantitative side of the telemetry layer: kernel-time histograms
per app x model x device, memo hit ratios, transfer byte counts,
executor worker utilization.  Instruments are identified by a metric
name plus a sorted label set (Prometheus's data model), live in a
:class:`MetricsRegistry`, and export two ways:

* :meth:`MetricsRegistry.to_json` — a stable, nested JSON document;
* :meth:`MetricsRegistry.to_prometheus` — the text exposition format
  (``# TYPE`` headers, ``_bucket{le=...}`` series, ``_sum``/``_count``),
  scrapable by any Prometheus-compatible collector.

Registries are additive: per-run registries recorded in pool workers
merge into one study-wide registry (:meth:`MetricsRegistry.merge`),
summing counters and histogram buckets and taking the last value of
gauges — deterministic because the executor merges in submission
order.  Everything here is plain data (dicts, lists, floats) plus
locks that are dropped on pickling, so a registry still crosses
process boundaries.

Instruments and registries are thread-safe: the prediction service
mutates one registry from its event loop, its backend worker thread,
and pool callbacks concurrently, so every update happens under a lock
(per instrument for the hot ``inc``/``observe`` path, one registry
lock for family/instrument creation, merging and export).
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from typing import Iterable


def _now() -> float:
    """Exemplar timestamp source (monkeypatchable in tests)."""
    return time.time()

#: Default histogram bucket upper bounds for *seconds*-valued metrics:
#: log-spaced from 1 µs to 10 s, the span between a kernel-launch floor
#: and a paper-scale end-to-end run.
TIME_BUCKETS_S: tuple[float, ...] = tuple(
    10.0**e for e in range(-6, 2)
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = key + extra
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Lockable:
    """Owns a non-picklable lock, recreated on unpickling."""

    def __init__(self) -> None:
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class Counter(_Lockable):
    """A monotonically increasing count (events, bytes, lookups)."""

    def __init__(self) -> None:
        super().__init__()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def merge(self, other: "Counter") -> None:
        with self._lock:
            self.value += other.value


class Gauge(_Lockable):
    """A point-in-time value (queue depth, utilization, ratio)."""

    def __init__(self) -> None:
        super().__init__()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def merge(self, other: "Gauge") -> None:
        # Merging run registries in submission order: last writer wins,
        # matching how a scraper would see the final state.
        with self._lock:
            self.value = other.value


class Histogram(_Lockable):
    """Cumulative-bucket histogram with sum and count.

    ``buckets`` are upper bounds (le); an implicit +Inf bucket catches
    the tail.  Bucket layouts must match to merge.
    """

    def __init__(self, buckets: tuple[float, ...] = TIME_BUCKETS_S) -> None:
        super().__init__()
        if list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0
        # Bucket index -> (sorted label items, observed value, unix ts):
        # the latest exemplar per bucket, rendered as an OpenMetrics
        # ``# {...}`` suffix so a scrape links buckets to trace ids.
        self.exemplars: dict[int, tuple[LabelKey, float, float]] = {}

    def observe(self, value: float, exemplar: dict[str, str] | None = None) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    break
            else:
                i = len(self.buckets)
                self.counts[-1] += 1
            if exemplar:
                self.exemplars[i] = (_label_key(exemplar), float(value), _now())

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> tuple[list[int], float, int]:
        """A consistent ``(counts, sum, count)`` view for exporters."""
        with self._lock:
            return list(self.counts), self.sum, self.count

    def exemplar_snapshot(self) -> dict[int, tuple[LabelKey, float, float]]:
        """Per-bucket-index exemplars (bucket order, +Inf last)."""
        with self._lock:
            return dict(self.exemplars)

    def cumulative(self, counts: list[int] | None = None) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ending at +Inf.

        ``counts`` lets exporters reuse one :meth:`snapshot` for the
        buckets and the sum/count lines, keeping them consistent under
        concurrent observes.
        """
        if counts is None:
            counts, _sum, _count = self.snapshot()
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + counts[-1]))
        return out

    def merge(self, other: "Histogram") -> None:
        if self.buckets != other.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        counts, total, count = other.snapshot()
        exemplars = other.exemplar_snapshot()
        with self._lock:
            self.counts = [a + b for a, b in zip(self.counts, counts)]
            self.sum += total
            self.count += count
            self.exemplars.update(exemplars)


class _Family:
    """All instruments sharing one metric name (one per label set)."""

    def __init__(self, name: str, kind: str, help: str, buckets: tuple[float, ...] | None) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.samples: dict[LabelKey, Counter | Gauge | Histogram] = {}

    def instrument(self, key: LabelKey) -> Counter | Gauge | Histogram:
        try:
            return self.samples[key]
        except KeyError:
            if self.kind == "counter":
                made: Counter | Gauge | Histogram = Counter()
            elif self.kind == "gauge":
                made = Gauge()
            else:
                made = Histogram(self.buckets or TIME_BUCKETS_S)
            self.samples[key] = made
            return made


class MetricsRegistry:
    """A named collection of metric families.

    Family and instrument creation, lookup, merging and export happen
    under one reentrant lock, so concurrent tasks/threads can mint and
    mutate instruments while another thread scrapes an export.  The
    lock is dropped on pickling (instruments recreate their own).
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.RLock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._families)

    def _family(
        self, name: str, kind: str, help: str, buckets: tuple[float, ...] | None = None
    ) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        return family

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        with self._lock:
            instrument = self._family(name, "counter", help).instrument(_label_key(labels))
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        with self._lock:
            instrument = self._family(name, "gauge", help).instrument(_label_key(labels))
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
        **labels: str,
    ) -> Histogram:
        with self._lock:
            instrument = self._family(name, "histogram", help, buckets).instrument(
                _label_key(labels)
            )
        assert isinstance(instrument, Histogram)
        return instrument

    def get(self, name: str, **labels: str) -> Counter | Gauge | Histogram | None:
        """Look up an existing instrument (reports, tests); no creation."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            return family.samples.get(_label_key(labels))

    def families(self) -> Iterable[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (additive; in place)."""
        with self._lock:
            for name in sorted(other._families):
                theirs = other._families[name]
                family = self._family(name, theirs.kind, theirs.help, theirs.buckets)
                for key in sorted(theirs.samples):
                    family.instrument(key).merge(theirs.samples[key])  # type: ignore[arg-type]

    # -- export --------------------------------------------------------

    def to_json(self) -> dict:
        """Stable JSON document: one entry per family, sorted labels."""
        doc: dict[str, object] = {}
        with self._lock:
            for family in self.families():
                samples = []
                for key in sorted(family.samples):
                    instrument = family.samples[key]
                    entry: dict[str, object] = {"labels": dict(key)}
                    if isinstance(instrument, Histogram):
                        counts, total, count = instrument.snapshot()
                        entry["count"] = count
                        entry["sum"] = total
                        entry["mean"] = total / count if count else 0.0
                        entry["buckets"] = [
                            {"le": "+Inf" if math.isinf(b) else b, "cumulative": c}
                            for b, c in instrument.cumulative(counts)
                        ]
                    else:
                        entry["value"] = instrument.value
                    samples.append(entry)
                doc[family.name] = {
                    "type": family.kind,
                    "help": family.help,
                    "samples": samples,
                }
        return doc

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            for family in self.families():
                if family.help:
                    lines.append(f"# HELP {family.name} {family.help}")
                lines.append(f"# TYPE {family.name} {family.kind}")
                for key in sorted(family.samples):
                    instrument = family.samples[key]
                    if isinstance(instrument, Histogram):
                        counts, total, count = instrument.snapshot()
                        exemplars = instrument.exemplar_snapshot()
                        for i, (bound, cumulative) in enumerate(
                            instrument.cumulative(counts)
                        ):
                            labels = _format_labels(key, (("le", _format_value(bound)),))
                            line = f"{family.name}_bucket{labels} {cumulative}"
                            exemplar = exemplars.get(i)
                            if exemplar is not None:
                                ex_labels, ex_value, ex_ts = exemplar
                                line += (
                                    f" # {_format_labels(ex_labels)}"
                                    f" {_format_value(ex_value)} {ex_ts:.6f}"
                                )
                            lines.append(line)
                        lines.append(
                            f"{family.name}_sum{_format_labels(key)} {_format_value(total)}"
                        )
                        lines.append(
                            f"{family.name}_count{_format_labels(key)} {count}"
                        )
                    else:
                        lines.append(
                            f"{family.name}{_format_labels(key)} {_format_value(instrument.value)}"
                        )
        return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, list[tuple[str, float]]]:
    """Minimal exposition-format parser (validation and tests).

    Returns ``{metric_name: [(label_block, value), ...]}`` and raises
    ``ValueError`` on any line that is neither a comment nor a valid
    sample — the CI artifact check runs on this.  OpenMetrics exemplar
    suffixes (``... # {trace_id="..."} value ts``) on bucket lines are
    accepted and ignored.
    """
    sample_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+([-+]?[0-9.eE+-]+|[+-]Inf|NaN)"
        r"(?:\s+#\s+\{[^}]*\}\s+\S+(?:\s+\S+)?)?$"
    )
    out: dict[str, list[tuple[str, float]]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip() or line.startswith("#"):
            continue
        match = sample_re.match(line)
        if not match:
            raise ValueError(f"line {lineno}: not a valid exposition sample: {line!r}")
        name, labels, value = match.groups()
        out.setdefault(name, []).append((labels or "", float(value)))
    return out


def parse_exemplars(text: str, metric: str) -> list[tuple[str, dict[str, str], float]]:
    """Exemplars attached to ``metric``'s bucket lines.

    Returns ``[(bucket_label_block, exemplar_labels, exemplar_value)]``
    — how the trace-smoke check recovers a trace id from a scrape.
    """
    line_re = re.compile(
        rf"^{re.escape(metric)}_bucket(\{{[^}}]*\}})?\s+\S+"
        r"\s+#\s+\{([^}]*)\}\s+(\S+)(?:\s+\S+)?$"
    )
    pair_re = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
    out: list[tuple[str, dict[str, str], float]] = []
    for line in text.splitlines():
        match = line_re.match(line)
        if not match:
            continue
        bucket_labels, exemplar_body, value = match.groups()
        labels = {k: v for k, v in pair_re.findall(exemplar_body)}
        out.append((bucket_labels or "", labels, float(value)))
    return out


def dump_json(registry: MetricsRegistry) -> str:
    return json.dumps(registry.to_json(), indent=2, sort_keys=True)
