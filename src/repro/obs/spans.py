"""Span and instant-event recording on the simulated clock.

A :class:`SpanRecorder` captures the timeline of one application run:
every cost the engine charges (kernel launch, transfer, runtime
overhead, host loop) becomes a :class:`Span` on a named *track* (one
track per simulated device queue), placed on the run's simulated clock
and stamped with wall-clock offsets as well.  Zero-duration
occurrences — memo hits and misses, scheduler decisions, shard
dispatches — become :class:`InstantEvent` records.

Instrumentation sites never hold a recorder; they ask for the
process-global *active* one::

    rec = spans.active()
    if rec is not None:
        rec.add("dgpu/gpu", spec.name, "kernel", seconds, ...)

When telemetry is off ``active()`` returns ``None`` and the site costs
one global read — recording can therefore be left compiled into every
hot path.  :class:`NullRecorder` offers the same interface as
:class:`SpanRecorder` with every method a no-op, for callers that
prefer unconditional calls.

Recorders carry their own :class:`~repro.obs.metrics.MetricsRegistry`
so per-run metrics merge alongside spans when the executor assembles
per-worker recorders into one timeline (:mod:`repro.obs.export`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator

from .metrics import MetricsRegistry

#: Per-recorder bound on stored spans+events.  Paper-scale runs launch
#: hundreds of thousands of kernels; beyond this the recorder keeps
#: counting (``dropped``) but stops storing, so the cap is never
#: silent.
DEFAULT_MAX_RECORDS = 200_000


def _freeze(args: dict[str, object]) -> tuple[tuple[str, object], ...]:
    """Canonical, hashable, picklable form of span arguments."""
    return tuple(sorted(args.items()))


@dataclass(frozen=True)
class Span:
    """One timed extent on one track.

    ``sim_*`` are seconds on the run's simulated clock (what the paper
    measures); ``wall_*`` are host ``perf_counter`` seconds relative to
    the recorder's origin (what the executor costs).
    """

    name: str
    category: str  # "kernel" | "transfer" | "launch" | "host" | "run" | ...
    track: str  # display row, e.g. "dgpu/gpu", "apu/host", "worker-0"
    sim_start: float
    sim_end: float
    wall_start: float
    wall_end: float
    args: tuple[tuple[str, object], ...] = ()

    @property
    def sim_seconds(self) -> float:
        return self.sim_end - self.sim_start

    @property
    def wall_seconds(self) -> float:
        return self.wall_end - self.wall_start

    @property
    def args_dict(self) -> dict[str, object]:
        return dict(self.args)

    def shifted(self, sim_offset: float, wall_offset: float = 0.0) -> "Span":
        """The same span displaced on both clocks (timeline merging)."""
        return replace(
            self,
            sim_start=self.sim_start + sim_offset,
            sim_end=self.sim_end + sim_offset,
            wall_start=self.wall_start + wall_offset,
            wall_end=self.wall_end + wall_offset,
        )


@dataclass(frozen=True)
class InstantEvent:
    """A zero-duration occurrence on one track."""

    name: str
    category: str
    track: str
    sim_ts: float
    wall_ts: float
    args: tuple[tuple[str, object], ...] = ()

    @property
    def args_dict(self) -> dict[str, object]:
        return dict(self.args)

    def shifted(self, sim_offset: float, wall_offset: float = 0.0) -> "InstantEvent":
        return replace(
            self, sim_ts=self.sim_ts + sim_offset, wall_ts=self.wall_ts + wall_offset
        )


@dataclass
class RunTelemetry:
    """The finished, picklable recording of one run.

    This is what crosses process boundaries from pool workers back to
    the executor, and what :func:`repro.obs.export.merge_run_telemetry`
    assembles into one study-wide timeline.
    """

    label: str
    meta: dict[str, str] = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)
    events: list[InstantEvent] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Total simulated seconds the recorder's clock advanced.
    sim_seconds: float = 0.0
    #: Wall seconds between recorder creation and ``finish()``.
    wall_seconds: float = 0.0
    #: Records not stored because the recorder hit its cap.
    dropped: int = 0
    #: Distributed-trace spans recorded in the worker under a propagated
    #: trace context (:mod:`repro.obs.tracing`), re-based so the run
    #: starts at 0; the executor re-parents/shifts them on merge.
    trace_spans: list = field(default_factory=list)


class SpanRecorder:
    """Accumulates spans, events and metrics for one run.

    The recorder owns a single simulated-clock cursor: each
    :meth:`add` places a leaf span at the cursor and advances it by the
    span's duration, mirroring how the engine charges costs serially to
    one :class:`~repro.engine.counters.PerfCounters`.  :meth:`span`
    brackets a nested extent (run → solver phase → kernels) whose
    simulated bounds are wherever the cursor was on entry and exit.
    """

    def __init__(
        self,
        meta: dict[str, str] | None = None,
        max_records: int = DEFAULT_MAX_RECORDS,
    ) -> None:
        self.meta = dict(meta or {})
        self.max_records = max_records
        self.spans: list[Span] = []
        self.events: list[InstantEvent] = []
        self.metrics = MetricsRegistry()
        self.dropped = 0
        self._sim_now = 0.0
        self._wall_origin = time.perf_counter()

    # -- clocks --------------------------------------------------------

    @property
    def sim_now(self) -> float:
        """Current position of the simulated-clock cursor (seconds)."""
        return self._sim_now

    def _wall(self) -> float:
        return time.perf_counter() - self._wall_origin

    def _room(self) -> bool:
        if len(self.spans) + len(self.events) >= self.max_records:
            self.dropped += 1
            return False
        return True

    # -- recording -----------------------------------------------------

    def add(
        self,
        track: str,
        name: str,
        category: str,
        sim_seconds: float,
        **args: object,
    ) -> None:
        """Record a leaf span at the cursor and advance the clock.

        The clock advances even when the span itself is dropped by the
        record cap, so enclosing spans keep correct extents.
        """
        start = self._sim_now
        self._sim_now = start + sim_seconds
        if not self._room():
            return
        wall = self._wall()
        self.spans.append(
            Span(name, category, track, start, self._sim_now, wall, wall, _freeze(args))
        )

    @contextmanager
    def span(self, track: str, name: str, category: str, **args: object) -> Iterator[None]:
        """Bracket a nested extent: simulated bounds follow the cursor,
        wall bounds are measured around the block."""
        sim_start = self._sim_now
        wall_start = self._wall()
        try:
            yield
        finally:
            if self._room():
                self.spans.append(
                    Span(
                        name,
                        category,
                        track,
                        sim_start,
                        self._sim_now,
                        wall_start,
                        self._wall(),
                        _freeze(args),
                    )
                )

    def instant(self, track: str, name: str, category: str, **args: object) -> None:
        """Record a zero-duration event at the cursor."""
        if not self._room():
            return
        self.events.append(
            InstantEvent(name, category, track, self._sim_now, self._wall(), _freeze(args))
        )

    def cache_event(self, cache: str, hit: bool, kind: str = "") -> None:
        """One memo-cache lookup: a counter bump plus an instant event.

        ``cache`` names the layer ("kernel" pricing vs. "setup"), so
        hit ratios stay separable per layer downstream.
        """
        result = "hit" if hit else "miss"
        self.metrics.counter(
            "repro_memo_lookups_total",
            help="Memo-cache lookups by layer and outcome.",
            cache=cache,
            result=result,
        ).inc()
        self.instant("memo", f"{cache}-{result}", "memo", kind=kind)

    # -- lifecycle -----------------------------------------------------

    def finish(self, label: str) -> RunTelemetry:
        """Seal the recording into a picklable :class:`RunTelemetry`."""
        return RunTelemetry(
            label=label,
            meta=dict(self.meta),
            spans=list(self.spans),
            events=list(self.events),
            metrics=self.metrics,
            sim_seconds=self._sim_now,
            wall_seconds=self._wall(),
            dropped=self.dropped,
        )


class NullRecorder:
    """The no-op recorder: same surface as :class:`SpanRecorder`.

    Exists so code that wants unconditional ``recorder.add(...)`` calls
    can hold one of these instead of branching; the engine's hot paths
    use the cheaper ``active() is None`` check instead.
    """

    sim_now = 0.0
    dropped = 0

    def __init__(self) -> None:
        self.meta: dict[str, str] = {}
        self.spans: list[Span] = []
        self.events: list[InstantEvent] = []
        self.metrics = MetricsRegistry()

    def add(self, track: str, name: str, category: str, sim_seconds: float, **args: object) -> None:
        pass

    @contextmanager
    def span(self, track: str, name: str, category: str, **args: object) -> Iterator[None]:
        yield

    def instant(self, track: str, name: str, category: str, **args: object) -> None:
        pass

    def cache_event(self, cache: str, hit: bool, kind: str = "") -> None:
        pass

    def finish(self, label: str) -> RunTelemetry:
        return RunTelemetry(label=label)


#: The process-global active recorder.  ``None`` means telemetry off.
_ACTIVE: SpanRecorder | None = None


def active() -> SpanRecorder | None:
    """The active recorder, or ``None`` when telemetry is disabled."""
    return _ACTIVE


def current() -> SpanRecorder | NullRecorder:
    """The active recorder, or a throwaway :class:`NullRecorder`."""
    return _ACTIVE if _ACTIVE is not None else NullRecorder()


@contextmanager
def recording(recorder: SpanRecorder) -> Iterator[SpanRecorder]:
    """Install ``recorder`` as the active one within the block.

    Nests: the previous recorder (possibly ``None``) is restored on
    exit, so instrumented code can itself run instrumented code.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous
