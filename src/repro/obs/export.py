"""Timeline assembly and exporters.

Two products come out of a telemetry-enabled run:

* a **Chrome trace** — ``trace_event`` JSON loadable in Perfetto or
  ``chrome://tracing``.  Two synthetic processes share the file: pid 1
  is *simulated time* (one thread/track per device queue: GPU queue,
  interconnect, host loop, per platform), pid 2 is *executor wall
  time* (one thread per executor worker, showing which worker ran
  which study cell when).  Both use microsecond timestamps, as the
  format requires.
* a **metrics file** — the merged registry, JSON or Prometheus text.

:func:`merge_run_telemetry` is the deterministic merge: per-run
recordings are laid end to end on the simulated axis in submission
order (run *i+1* starts where run *i* ended, so one device queue's
track reads as the study's serial schedule), and each worker's runs
are laid end to end on its own wall-clock track.  Submission order is
fixed by the plan, so the merged timeline is identical for every
worker count and across repeated runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .metrics import MetricsRegistry
from .spans import InstantEvent, RunTelemetry, Span

#: Synthetic process ids of the two time domains in the Chrome trace.
SIM_PID = 1
EXEC_PID = 2


@dataclass
class Timeline:
    """One merged, study-wide telemetry recording."""

    spans: list[Span] = field(default_factory=list)
    events: list[InstantEvent] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Spans/events the per-run recorders could not store (record cap).
    dropped: int = 0

    def tracks(self) -> list[str]:
        """All track names, device queues first, sorted."""
        seen = {s.track for s in self.spans} | {e.track for e in self.events}
        return sorted(seen)

    def sim_tracks(self) -> list[str]:
        return [t for t in self.tracks() if not t.startswith("worker-")]

    def worker_tracks(self) -> list[str]:
        return [t for t in self.tracks() if t.startswith("worker-")]


def merge_run_telemetry(
    items: list[tuple[RunTelemetry, int]],
    extra_metrics: MetricsRegistry | None = None,
) -> Timeline:
    """Merge per-run recordings into one timeline.

    ``items`` is ``[(telemetry, worker_index), ...]`` in **submission
    order** — the executor's unique-run order, which is fixed by the
    plan and independent of completion order, making the merge
    bit-deterministic.  Each run's simulated spans shift by the global
    simulated cursor; each run also contributes one ``run`` span on its
    worker's wall-clock track, placed at that worker's running wall
    cursor.
    """
    timeline = Timeline()
    sim_cursor = 0.0
    wall_cursor: dict[int, float] = {}
    for telemetry, worker in items:
        wall_at = wall_cursor.get(worker, 0.0)
        for span in telemetry.spans:
            timeline.spans.append(span.shifted(sim_cursor, wall_at))
        for event in telemetry.events:
            timeline.events.append(event.shifted(sim_cursor, wall_at))
        track = f"worker-{worker}"
        timeline.spans.append(
            Span(
                name=telemetry.label,
                category="run",
                track=track,
                sim_start=sim_cursor,
                sim_end=sim_cursor + telemetry.sim_seconds,
                wall_start=wall_at,
                wall_end=wall_at + telemetry.wall_seconds,
                args=(("sim_seconds", telemetry.sim_seconds),)
                + tuple(sorted(telemetry.meta.items())),
            )
        )
        timeline.metrics.merge(telemetry.metrics)
        timeline.dropped += telemetry.dropped
        sim_cursor += telemetry.sim_seconds
        wall_cursor[worker] = wall_at + telemetry.wall_seconds
    if extra_metrics is not None:
        timeline.metrics.merge(extra_metrics)
    return timeline


def chrome_trace(timeline: Timeline) -> dict:
    """The timeline as a Chrome ``trace_event`` JSON object."""
    events: list[dict] = [
        {
            "ph": "M",
            "pid": SIM_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "simulated time (device queues)"},
        },
        {
            "ph": "M",
            "pid": EXEC_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "executor wall time (workers)"},
        },
    ]

    tids: dict[str, tuple[int, int]] = {}  # track -> (pid, tid)
    sim_tracks = timeline.sim_tracks()
    worker_tracks = timeline.worker_tracks()
    for index, track in enumerate(sim_tracks):
        tids[track] = (SIM_PID, index + 1)
    for index, track in enumerate(worker_tracks):
        tids[track] = (EXEC_PID, index + 1)
    for track, (pid, tid) in sorted(tids.items()):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )

    for span in timeline.spans:
        pid, tid = tids[span.track]
        wall_domain = pid == EXEC_PID
        start = span.wall_start if wall_domain else span.sim_start
        duration = span.wall_seconds if wall_domain else span.sim_seconds
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "name": span.name,
                "cat": span.category,
                "ts": start * 1e6,
                "dur": duration * 1e6,
                "args": span.args_dict,
            }
        )
    for event in timeline.events:
        pid, tid = tids[event.track]
        ts = event.wall_ts if pid == EXEC_PID else event.sim_ts
        events.append(
            {
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "pid": pid,
                "tid": tid,
                "name": event.name,
                "cat": event.category,
                "ts": ts * 1e6,
                "args": event.args_dict,
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tracks": timeline.tracks(),
            "dropped_records": timeline.dropped,
        },
    }


def write_chrome_trace(timeline: Timeline, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(timeline), fh)


def write_metrics(registry: MetricsRegistry, path: str) -> None:
    """JSON for ``*.json`` paths, Prometheus text otherwise."""
    if path.endswith(".json"):
        with open(path, "w") as fh:
            json.dump(registry.to_json(), fh, indent=2, sort_keys=True)
    else:
        with open(path, "w") as fh:
            fh.write(registry.to_prometheus())


def top_breakdown(timeline: Timeline, top: int = 10) -> str:
    """Plain-text where-did-the-time-go report.

    Phase totals by span category, then the top-N span names by total
    simulated seconds — the profile command's headline output.
    """
    by_category: dict[str, float] = {}
    by_name: dict[tuple[str, str], tuple[float, int]] = {}
    for span in timeline.spans:
        if span.category == "run":
            continue  # envelope spans double-count their children
        by_category[span.category] = by_category.get(span.category, 0.0) + span.sim_seconds
        key = (span.category, span.name)
        seconds, count = by_name.get(key, (0.0, 0))
        by_name[key] = (seconds + span.sim_seconds, count + 1)

    total = sum(by_category.values())
    lines = ["simulated-time breakdown by phase:"]
    for category in sorted(by_category, key=by_category.get, reverse=True):
        seconds = by_category[category]
        share = seconds / total if total else 0.0
        lines.append(f"  {category:<10} {seconds * 1e3:10.3f} ms  {share:6.1%}")

    lines.append(f"top {top} spans by simulated time:")
    ranked = sorted(by_name.items(), key=lambda kv: kv[1][0], reverse=True)[:top]
    for (category, name), (seconds, count) in ranked:
        share = seconds / total if total else 0.0
        lines.append(
            f"  {seconds * 1e3:10.3f} ms  {share:6.1%}  {count:6d}x  [{category}] {name}"
        )
    if timeline.dropped:
        lines.append(
            f"note: {timeline.dropped} records dropped at the per-run cap; "
            "totals above cover stored spans only"
        )
    return "\n".join(lines)
