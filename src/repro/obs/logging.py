"""Structured JSON logging with a bounded in-process ring.

One record is one JSON object per line on stderr — ``ts``, ``level``,
``component``, ``event``, plus whatever fields the call site attaches
(trace ids, routes, statuses, latency segments) — so server output is
machine-parseable instead of ad-hoc prints.  Every record also lands in
a bounded global ring regardless of level, which keeps the recent
history inspectable (``/v1/debug/logs``) without unbounded growth and
without paying stderr I/O on the request hot path: per-request access
records log at ``debug``, which the default ``info`` stream level keeps
off stderr while the ring still captures them.

The stream level comes from ``REPRO_LOG_LEVEL`` (debug/info/warning/
error); ``level="off"`` silences the stream entirely (tests).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from typing import Any, TextIO

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100}


class LogRing:
    """A bounded, thread-safe ring of recent structured records."""

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._records: deque[dict] = deque(maxlen=capacity)

    def append(self, record: dict) -> None:
        with self._lock:
            self._records.append(record)

    def recent(self, limit: int | None = None) -> list[dict]:
        """Most recent records, oldest first."""
        with self._lock:
            records = list(self._records)
        if limit is not None and limit >= 0:
            records = records[-limit:]
        return records

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


#: The process-global ring every logger feeds.
RING = LogRing()

_lock = threading.Lock()
_loggers: dict[str, "StructuredLogger"] = {}
_stream: TextIO | None = None  # None -> sys.stderr at emit time
_stream_level = LEVELS.get(os.environ.get("REPRO_LOG_LEVEL", "info").lower(), 20)


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


class StructuredLogger:
    """Emits one JSON record per event to the ring and (level
    permitting) to stderr."""

    def __init__(self, component: str, ring: LogRing | None = None) -> None:
        self.component = component
        self.ring = ring if ring is not None else RING

    def log(self, level: str, event: str, **fields: Any) -> dict:
        record = {
            "ts": round(time.time(), 6),
            "level": level,
            "component": self.component,
            "event": event,
        }
        for key, value in fields.items():
            record[key] = _jsonable(value)
        self.ring.append(record)
        if LEVELS.get(level, 20) >= _stream_level:
            stream = _stream if _stream is not None else sys.stderr
            try:
                stream.write(json.dumps(record, default=str) + "\n")
                stream.flush()
            except (OSError, ValueError):
                pass  # a closed stderr must never take down the server
        return record

    def debug(self, event: str, **fields: Any) -> dict:
        return self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> dict:
        return self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> dict:
        return self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> dict:
        return self.log("error", event, **fields)


def get_logger(component: str) -> StructuredLogger:
    """The shared logger for a component (cached per name)."""
    with _lock:
        logger = _loggers.get(component)
        if logger is None:
            logger = _loggers[component] = StructuredLogger(component)
        return logger


def set_stream(stream: TextIO | None) -> None:
    """Redirect stream emission (``None`` restores stderr)."""
    global _stream
    _stream = stream


def set_stream_level(level: str) -> None:
    """Minimum level that reaches the stream; the ring sees all."""
    global _stream_level
    _stream_level = LEVELS.get(level.lower(), 20)


def stream_level() -> str:
    for name, value in LEVELS.items():
        if value == _stream_level:
            return name
    return str(_stream_level)
