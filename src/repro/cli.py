"""Command-line interface: regenerate any table or figure of the paper.

Examples::

    repro table1            # Table I: application characteristics
    repro table4            # Table IV: SLOC, measured vs paper
    repro figure7 --app CoMD
    repro figure8           # APU speedups (single + double precision)
    repro figure9           # dGPU speedups
    repro figure10          # productivity, Eq. 1
    repro figure11          # optimization-feature matrix
    repro all               # everything
    repro figure9 --full    # exact Table I problem sizes (slow)
    repro study --workers 4             # parallel comparison study
    repro study --paper-scale --workers 4   # full Table I matrix
    repro sweep --app LULESH --workers 4    # parallel Figure 7 grid
    repro characterize --engine vector --workers 4   # Table I, fast replay
    repro characterize --bench BENCH_cache.json      # tracked perf baseline
    repro profile figure8 --trace t.json --metrics m.prom   # telemetry
    repro figure9 --trace t.json        # any study-backed command
    repro serve --port 8351             # the prediction service
    repro loadtest --spawn --bench BENCH_serve.json  # serving baseline
    repro loadtest --breakdown          # queue wait vs engine vs serialize
    repro benchdiff BENCH_serve.json    # SLO sentinel vs committed baseline
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .apps import ALL_APPS, APPS_BY_NAME, PROXY_APPS
from .exec import ExecutionInterrupted, RetryPolicy, parse_fault_plan
from .core import (
    format_table,
    bench_configs,
    decompose_transfers,
    study_records,
    sweep_records,
    write_csv,
    write_json,
    characterize,
    characterize_apps,
    compute_productivity,
    render_energy,
    render_figure7,
    render_figure10,
    render_figure11,
    render_speedups,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    run_study,
    run_sweep,
    sweep_configs,
)
from .exec.plan import PLATFORMS, platform_label
from .hardware.specs import Precision
from .models.registry import normalize_model_name
from .sloc import PAPER_TABLE4, table4

FIGURE_APPS = tuple(app.name for app in ALL_APPS)


def _wants_telemetry(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "trace", None) or getattr(args, "metrics", None))


def _fault_kwargs(args: argparse.Namespace) -> dict:
    """The fault-tolerance keyword arguments selected by the CLI flags."""
    kwargs: dict = {
        "policy": RetryPolicy(
            max_attempts=getattr(args, "retries", 3),
            run_timeout=getattr(args, "run_timeout", None),
        )
    }
    spec = getattr(args, "inject_faults", None)
    if spec:
        kwargs["faults"] = parse_fault_plan(spec, seed=getattr(args, "fault_seed", 0))
    resume = getattr(args, "resume", None)
    if resume:
        kwargs["checkpoint"] = resume
    return kwargs


def _print_failures(failures) -> bool:
    """Print the quarantined-run table; True if there were any."""
    if not failures:
        return False
    print()
    print(format_table(
        ["Run", "Kind", "Attempts", "Error"],
        [list(f.summary_row()) for f in failures],
        title=f"Quarantined runs ({len(failures)})",
    ))
    return True


def _study(full: bool, workers: int = 1, cache: bool = True, telemetry: bool = False,
           engine: str = "scalar", models=None, platforms=None, **fault_kwargs):
    configs = None if full else bench_configs()
    matrix = {}
    if models is not None:
        matrix["models"] = models
    if platforms is not None:
        matrix["platforms"] = platforms
    return run_study(
        ALL_APPS, paper_scale=True, configs=configs, max_workers=workers,
        use_cache=cache, telemetry=telemetry, engine=engine, **matrix, **fault_kwargs,
    )


def _write_telemetry(timeline, args: argparse.Namespace) -> None:
    """Write the ``--trace`` / ``--metrics`` artifacts, if requested."""
    if timeline is None:
        return
    from .obs import write_chrome_trace, write_metrics

    if getattr(args, "trace", None):
        write_chrome_trace(timeline, args.trace)
        print(f"wrote Chrome trace ({len(timeline.spans)} spans, "
              f"{len(timeline.events)} events) to {args.trace}")
    if getattr(args, "metrics", None):
        write_metrics(timeline.metrics, args.metrics)
        print(f"wrote metrics to {args.metrics}")


def cmd_table1(args: argparse.Namespace) -> None:
    configs = bench_configs()
    sweeps = sweep_configs()
    measured = [
        characterize(app, configs[app.name], sweep_config=sweeps[app.name])
        for app in PROXY_APPS
    ]
    print(render_table1(measured))


def cmd_table2(_args: argparse.Namespace) -> None:
    print(render_table2())
    print()
    print(render_table3())


def cmd_table4(_args: argparse.Namespace) -> None:
    print(render_table4(table4(ALL_APPS), PAPER_TABLE4))


def cmd_figure7(args: argparse.Namespace) -> None:
    configs = sweep_configs()
    apps = [APPS_BY_NAME[args.app]] if args.app else ALL_APPS
    for app in apps:
        sweep = run_sweep(app, configs[app.name])
        print(render_figure7(sweep))
        print(f"classification: {sweep.classify()}")
        print()


def cmd_figure8(args: argparse.Namespace) -> None:
    study = _study(args.full, args.workers, not args.no_cache, _wants_telemetry(args))
    if args.chart:
        from .core import figure_chart

        print(figure_chart(study, FIGURE_APPS, apu=True))
        return
    print(render_speedups(study, FIGURE_APPS, apu=True,
                          title="Figure 8: speedup over 4-core OpenMP on the APU"))
    _write_telemetry(study.telemetry, args)


def cmd_figure9(args: argparse.Namespace) -> None:
    study = _study(args.full, args.workers, not args.no_cache, _wants_telemetry(args))
    if args.chart:
        from .core import figure_chart

        print(figure_chart(study, FIGURE_APPS, apu=False))
        return
    print(render_speedups(study, FIGURE_APPS, apu=False,
                          title="Figure 9: speedup over 4-core OpenMP on the dGPU"))
    _write_telemetry(study.telemetry, args)


def cmd_figure10(args: argparse.Namespace) -> None:
    study = _study(args.full, args.workers, not args.no_cache, _wants_telemetry(args))
    for apu in (True, False):
        result = compute_productivity(study, ALL_APPS, apu=apu)
        print(render_figure10(result, FIGURE_APPS))
        print()
    _write_telemetry(study.telemetry, args)


def cmd_figure11(_args: argparse.Namespace) -> None:
    print(render_figure11())


def cmd_ablation(args: argparse.Namespace) -> None:
    """Transfer decomposition of one app on the dGPU (Sec. VI-A)."""
    from .core import format_table

    app = APPS_BY_NAME[args.app or "LULESH"]
    config = bench_configs()[app.name]
    decomposition = decompose_transfers(app, config, apu=False)
    rows = [
        [
            d.model,
            f"{d.kernel_seconds * 1e3:.2f} ms",
            f"{d.transfer_seconds * 1e3:.2f} ms",
            f"{d.transfer_share:.0%}",
            f"{d.bytes_moved / 1e6:.1f} MB",
        ]
        for d in decomposition.values()
    ]
    print(format_table(
        ["Model", "Kernel time", "Transfer time", "Transfer share", "Bytes moved"],
        rows,
        title=f"Transfer decomposition: {app.name} on the dGPU",
    ))


def cmd_export(args: argparse.Namespace) -> None:
    """Export the full study (and sweeps) to JSON or CSV."""
    study = _study(args.full, args.workers, not args.no_cache)
    records = study_records(study)
    if args.sweeps:
        sweeps = sweep_configs()
        for app in ALL_APPS:
            records.extend(sweep_records(run_sweep(app, sweeps[app.name])))
    out = args.out
    if out.endswith(".csv"):
        write_csv(records, out)
    else:
        write_json(records, out)
    print(f"wrote {len(records)} records to {out}")


def cmd_characterize(args: argparse.Namespace) -> int | None:
    """Regenerate Table I through the selected replay engine.

    Prints the characterization table plus the executor stats (which
    now include the trace-replay memo counters).  ``--bench FILE``
    additionally runs the cache-replay benchmark and writes the
    tracked perf baseline (``BENCH_cache.json``).
    """
    fault_kwargs = _fault_kwargs(args)
    fault_kwargs.pop("checkpoint", None)  # per-app sweeps share no journal
    result = characterize_apps(
        PROXY_APPS,
        max_workers=args.workers,
        use_cache=not args.no_cache,
        engine=args.engine,
        run_engine=args.engine,
        telemetry=_wants_telemetry(args),
        **fault_kwargs,
    )
    print(render_table1(result.rows))
    print()
    print(result.stats.summary())
    _write_telemetry(result.telemetry, args)
    if args.bench:
        from .core.cachebench import render_cache_bench, run_cache_bench, write_cache_bench

        bench = run_cache_bench(repeats=args.bench_repeats, reps=args.bench_reps)
        print()
        print(render_cache_bench(bench))
        write_cache_bench(bench, args.bench)
        print(f"\nwrote cache-replay benchmark to {args.bench}")
    if _print_failures(result.failures):
        return 1


def cmd_study(args: argparse.Namespace) -> int | None:
    """Run the comparison study through the parallel executor.

    Prints the Figure 8/9 speedup tables plus the executor's
    observability counters (wall time, deduplication, kernel memo
    cache hits).  ``--paper-scale`` uses the exact Table I problem
    sizes; the default is the reduced bench-scale matrix.
    """
    models = (
        tuple(normalize_model_name(m) for m in args.model) if args.model else None
    )
    platforms = tuple(args.platform) if args.platform else None
    study = _study(args.paper_scale, args.workers, not args.no_cache,
                   _wants_telemetry(args), engine=args.engine,
                   models=models, platforms=platforms,
                   **_fault_kwargs(args))
    if models is not None or platforms is not None:
        # A custom matrix: render the cross-vendor energy view per
        # platform (speedup + joules + EDP) instead of Figures 8/9.
        from .core.study import GPU_MODELS

        for platform in platforms or ("apu", "dgpu"):
            print(render_energy(
                study, FIGURE_APPS, models or GPU_MODELS, platform,
                title=f"Energy/EDP on the {platform_label(platform)} "
                      f"(speedup over 4-core OpenMP)"))
            print()
    else:
        print(render_speedups(study, FIGURE_APPS, apu=True,
                              title="Figure 8: speedup over 4-core OpenMP on the APU"))
        print()
        print(render_speedups(study, FIGURE_APPS, apu=False,
                              title="Figure 9: speedup over 4-core OpenMP on the dGPU"))
        print()
    print(study.stats.summary())
    if args.per_run:
        print()
        for label, wall, hits, misses, setup_hits, setup_misses, *_trace in sorted(
            study.stats.per_run, key=lambda r: r[1], reverse=True
        ):
            print(f"  {wall:8.3f} s  kernel {hits:6d}/{misses:<6d}  "
                  f"setup {setup_hits:3d}/{setup_misses:<3d}  {label}")
    _write_telemetry(study.telemetry, args)
    if args.out:
        write_json(study_records(study), args.out)
        print(f"\nwrote {len(study.entries)} records to {args.out}")
    if _print_failures(study.failures):
        return 1


def cmd_sweep(args: argparse.Namespace) -> int | None:
    """Run Figure 7 frequency sweeps through the parallel executor."""
    configs = sweep_configs()
    apps = [APPS_BY_NAME[args.app]] if args.app else ALL_APPS
    lost = False
    for app in apps:
        sweep = run_sweep(
            app, configs[app.name], max_workers=args.workers,
            use_cache=not args.no_cache, telemetry=_wants_telemetry(args),
            engine=args.engine, **_fault_kwargs(args),
        )
        print(render_figure7(sweep))
        if sweep.complete:
            print(f"classification: {sweep.classify()}")
        else:
            print("classification: unavailable (grid points quarantined)")
        print(sweep.stats.summary())
        _write_telemetry(sweep.telemetry, args)
        lost = _print_failures(sweep.failures) or lost
        print()
    if lost:
        return 1


def cmd_profile(args: argparse.Namespace) -> None:
    """Run a study or sweep with telemetry and report where time goes.

    Prints the per-phase and top-N span breakdowns plus the executor
    stats (cache hit ratios per memo layer, limited-by tallies), and
    writes the Chrome-trace / metrics artifacts when asked.  The
    speedup numbers are bit-identical to the un-instrumented run of
    the same target.
    """
    from .obs import top_breakdown

    if args.target == "sweep":
        app = APPS_BY_NAME[args.app or "LULESH"]
        sweep = run_sweep(
            app, sweep_configs()[app.name], max_workers=args.workers,
            use_cache=not args.no_cache, telemetry=True,
        )
        timeline, stats = sweep.telemetry, sweep.stats
        print(f"profiled Figure 7 sweep: {app.name}")
    elif args.target == "characterize":
        result = characterize_apps(
            PROXY_APPS, max_workers=args.workers,
            use_cache=not args.no_cache, telemetry=True,
        )
        timeline, stats = result.telemetry, result.stats
        print(render_table1(result.rows))
    else:
        study = _study(args.full, args.workers, not args.no_cache, telemetry=True)
        timeline, stats = study.telemetry, study.stats
        if args.target in ("figure8", "figure9"):
            apu = args.target == "figure8"
            title = ("Figure 8: speedup over 4-core OpenMP on the APU" if apu
                     else "Figure 9: speedup over 4-core OpenMP on the dGPU")
            print(render_speedups(study, FIGURE_APPS, apu=apu, title=title))
        else:
            print(f"profiled comparison study "
                  f"({len(study.entries)} entries, {stats.unique_runs} runs)")
    print()
    print(top_breakdown(timeline, top=args.top))
    print()
    print(stats.summary())
    print(f"trace tracks: {len(timeline.sim_tracks())} device-queue, "
          f"{len(timeline.worker_tracks())} worker")
    _write_telemetry(timeline, args)


def cmd_serve(args: argparse.Namespace) -> int | None:
    """Run the prediction service until SIGTERM/SIGINT, then drain."""
    import asyncio
    import signal

    from .serve import ServeConfig, Server

    store_path = args.store
    if args.shards > 1 and store_path is None:
        # A sharded tier without a shared store cannot keep its
        # restart-warm promise; default to an ephemeral one and say so.
        import tempfile

        store_path = tempfile.mkdtemp(prefix="repro-store-")
        print(f"no --store given; sharded tier using ephemeral store {store_path}")
    config = ServeConfig(
        host=args.host,
        port=args.port,
        window_s=args.window_ms / 1e3,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        deadline_s=args.deadline,
        retries=args.retries,
        run_timeout_s=args.run_timeout,
        engine=args.engine,
        store_path=store_path,
        warm=args.warm,
        warm_scales=tuple(args.warm_scales.split(",")),
        max_study_runs=args.max_study_runs,
        max_batch_cells=args.max_batch_cells,
    )
    if args.shards > 1:
        return _serve_sharded(args, config)

    async def main() -> None:
        server = Server(config)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                signal.signal(sig, lambda *_: stop.set())
        await server.start()
        print(f"serving on {server.url} "
              f"(batch window {config.window_s * 1e3:g} ms, "
              f"queue bound {config.max_queue}, deadline {config.deadline_s:g} s)")
        if server.warm_report is not None:
            print(server.warm_report.summary())
        print("routes: POST /v1/predict /v1/study /v1/batch, "
              "GET /healthz /readyz /metrics")
        await stop.wait()
        print("draining in-flight requests ...")
        await server.shutdown()
        total = sum(
            sample.value
            for family in server.metrics.families()
            if family.name == "repro_serve_requests_total"
            for sample in family.samples.values()
        )
        print(f"drained; served {total:g} requests")

    asyncio.run(main())


def _serve_sharded(args: argparse.Namespace, config) -> int | None:
    """Run the sharded tier: N shard processes behind the hash router."""
    import asyncio
    import signal

    from .serve.shard import RouterConfig, ShardRouter, ShardSupervisor

    print(f"starting {args.shards} shards "
          f"(store {config.store_path}, warm {config.warm}) ...")
    supervisor = ShardSupervisor(config, args.shards)
    supervisor.start()
    router = ShardRouter(supervisor=supervisor, config=RouterConfig(
        host=args.host,
        port=args.port,
        deadline_s=args.deadline,
        max_study_runs=args.max_study_runs,
        max_batch_cells=args.max_batch_cells,
    ))

    async def main() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                signal.signal(sig, lambda *_: stop.set())
        await router.start()
        print(f"routing on {router.url} over:")
        for url in supervisor.urls:
            print(f"  {url}")
        print("routes: POST /v1/predict /v1/study /v1/batch, GET /v1/shards, "
              "POST /v1/admin/restart, GET /healthz /readyz /metrics")
        await stop.wait()
        print("draining router and shards ...")
        await router.shutdown()
        print("tier stopped")

    try:
        asyncio.run(main())
    finally:
        supervisor.stop()


def _predict_cells(args: argparse.Namespace, apps: list[str]) -> list[dict]:
    """The cell mix: apps x models x platforms x precisions."""
    from .core.study import GPU_MODELS

    models = [normalize_model_name(args.model)] if args.model else list(GPU_MODELS)
    platforms = [args.platform] if args.platform else ["apu", "dgpu"]
    precisions = [args.precision] if args.precision else ["single", "double"]
    return [
        {"app": app, "model": model, "platform": platform,
         "precision": precision, "scale": args.scale}
        for app in apps
        for model in models
        for platform in platforms
        for precision in precisions
    ]


def _loadtest_bodies(args: argparse.Namespace) -> list[dict]:
    """The query mix for the chosen route.

    ``predict`` rotates one app's cells as individual requests;
    ``batch`` spreads the paper's proxy apps (unless ``--app`` narrows
    it) across ``--batch-cells``-sized bulk requests.
    """
    if args.route == "batch":
        from .apps import PROXY_APPS

        apps = [args.app] if args.app else [app.name for app in PROXY_APPS]
        cells = _predict_cells(args, apps)
        size = max(1, args.batch_cells)
        return [
            {"cells": cells[i:i + size]} for i in range(0, len(cells), size)
        ]
    return _predict_cells(args, [args.app or "XSBench"])


def cmd_loadtest(args: argparse.Namespace) -> int | None:
    """Drive a prediction server and record the serving baseline."""
    import asyncio
    from .serve import ServeConfig, ServerThread, run_load, write_bench

    if args.chaos:
        return _loadtest_chaos(args)
    if args.shards:
        return _loadtest_sharded(args)

    bodies = _loadtest_bodies(args)
    path = "/v1/batch" if args.route == "batch" else "/v1/predict"
    spawned = None
    if args.url:
        url = args.url if len(args.url) > 1 else args.url[0]
    else:
        spawned = ServerThread(ServeConfig(
            max_queue=args.max_queue, window_s=args.window_ms / 1e3,
            store_path=args.store, warm=args.warm,
        )).start()
        url = spawned.url
        print(f"spawned ephemeral server on {url}")

    async def measured() -> tuple:
        from .serve.loadgen import fetch_text

        scrape = url if isinstance(url, str) else url[0]
        before = await fetch_text(scrape) if args.breakdown else None
        result = await run_load(
            url,
            bodies,
            mode=args.mode,
            concurrency=args.concurrency,
            duration_s=args.duration,
            rate=args.rate,
            warmup=not args.cold,
            path=path,
        )
        after = await fetch_text(scrape) if args.breakdown else None
        return result, before, after

    try:
        result, before, after = asyncio.run(measured())
    finally:
        if spawned is not None:
            spawned.stop()
    print(f"{len(bodies)} distinct {args.route} queries "
          f"({'cold' if args.cold else 'warmed'}), target {url}")
    print(result.summary())
    if args.breakdown:
        from .serve.loadgen import render_breakdown, segment_breakdown

        print()
        print(render_breakdown(segment_breakdown(before, after)))
    if args.bench:
        write_bench(result, args.bench)
        print(f"\nwrote serving benchmark to {args.bench}")
    if result.errors or not result.requests:
        return 1


def _loadtest_sharded(args: argparse.Namespace) -> int | None:
    """Stand up a sharded tier and record the full serving baseline.

    Three measurements in one pass, matching the rows of
    ``BENCH_serve.json``: warm per-request ``/v1/predict`` capacity
    (the historical top-level row), warm bulk ``/v1/batch`` aggregate
    pricing throughput across all shards (``sharded``), and the
    restart drill — gracefully bounce shard 0, then re-issue the whole
    warm mix against the replacement and count answers that had to be
    recomputed (``restart.cold_misses``; the store makes it 0).
    """
    import argparse as _argparse
    import asyncio
    import tempfile

    from .serve import ServeConfig, run_load
    from .serve.loadgen import post_json, write_tier_bench
    from .serve.shard import ShardedTier

    store = args.store or tempfile.mkdtemp(prefix="repro-store-")
    predict_args = _argparse.Namespace(**{**vars(args), "route": "predict"})
    batch_args = _argparse.Namespace(**{**vars(args), "route": "batch"})
    predict_bodies = _loadtest_bodies(predict_args)
    batch_bodies = _loadtest_bodies(batch_args)

    tier = ShardedTier(ServeConfig(
        max_queue=args.max_queue, window_s=args.window_ms / 1e3,
        store_path=store, warm=args.warm,
    ), shards=args.shards)
    print(f"starting {args.shards}-shard tier (store {store}) ...")
    with tier:
        urls = tier.shard_urls
        print(f"router {tier.url} over {', '.join(urls)}")

        async def protocol_run() -> tuple:
            legacy = await run_load(
                urls, predict_bodies, mode=args.mode,
                concurrency=args.concurrency, duration_s=args.duration,
                rate=args.rate, warmup=not args.cold,
            )
            sharded = await run_load(
                urls, batch_bodies, mode="closed",
                concurrency=args.concurrency, duration_s=args.duration,
                warmup=not args.cold, path="/v1/batch",
            )
            return legacy, sharded

        legacy, sharded = asyncio.run(protocol_run())
        print("\nwarm /v1/predict across shards:")
        print(legacy.summary())
        print("\nwarm /v1/batch across shards:")
        print(sharded.summary())

        async def restart_drill() -> dict:
            status, doc = await post_json(
                tier.url, "/v1/admin/restart", {"shard": 0}
            )
            if status != 200:
                return {"error": doc, "cold_misses": -1, "checked": 0}
            restarted = doc["url"]
            checked = 0
            tally: dict[str, int] = {}
            for body in batch_bodies:
                status, answer = await post_json(restarted, "/v1/batch", body)
                if status != 200:
                    return {"error": answer, "cold_misses": -1, "checked": checked}
                checked += answer["count"]
                for label, count in answer["served"].items():
                    tally[label] = tally.get(label, 0) + count
            return {
                "shard": 0,
                "restart_s": doc["restart_s"],
                "checked": checked,
                "cold_misses": tally.get("computed", 0),
                "served": tally,
            }

        restart = asyncio.run(restart_drill())
        print(f"\nrestart drill: {restart}")

        if args.breakdown:
            from .serve.loadgen import fetch_json, render_shard_health

            try:
                listing = asyncio.run(fetch_json(tier.url, "/v1/shards"))
            except (OSError, RuntimeError, ValueError) as exc:
                print(f"\nshard health unavailable: {exc}")
            else:
                print("\nshard health (/v1/shards):")
                print(render_shard_health(listing))

    if args.bench:
        write_tier_bench(legacy, sharded, restart, args.shards, args.bench)
        print(f"\nwrote serving benchmark to {args.bench}")
    failed = (
        legacy.errors or sharded.errors or not legacy.requests
        or not sharded.requests or restart.get("cold_misses") != 0
    )
    if failed:
        return 1


def _loadtest_chaos(args: argparse.Namespace) -> int | None:
    """Run the self-healing chaos drill and hold it to its invariants.

    Exits non-zero on any violation: a wrong answer, an error rate
    above 1%, a response outside the 5xx/429 failure contract, failure
    to converge back to all-shards-healthy, a cold miss after
    recovery, or a storm too gentle to exercise the machinery (no
    respawn or no breaker cycle observed).
    """
    from .serve.chaos import (
        DEFAULT_CHAOS_PLAN,
        DEFAULT_CHAOS_SEED,
        merge_chaos_row,
        run_chaos_drill,
    )

    report = run_chaos_drill(
        shards=args.shards or 2,
        duration_s=args.duration,
        concurrency=args.concurrency,
        plan=args.chaos_plan or DEFAULT_CHAOS_PLAN,
        seed=args.chaos_seed if args.chaos_seed is not None else DEFAULT_CHAOS_SEED,
        store=args.store,
        settle_timeout_s=args.settle_timeout,
        max_queue=args.max_queue,
        window_ms=args.window_ms,
        echo=print,
    )
    print()
    print(report.summary())
    if args.bench:
        merge_chaos_row(args.bench, report.row())
        print(f"\nmerged chaos row into {args.bench}")
    if not report.ok:
        return 1


def cmd_benchdiff(args: argparse.Namespace) -> int | None:
    """Hold fresh benchmark JSON against the committed baselines."""
    from pathlib import Path

    from .core.benchdiff import compare, render

    deltas = compare(
        [Path(candidate) for candidate in args.candidates],
        Path(args.baseline_dir),
        scale=args.tolerance_scale,
    )
    print(render(deltas, scale=args.tolerance_scale))
    if any(not delta.ok for delta in deltas):
        return 1


def cmd_all(args: argparse.Namespace) -> None:
    cmd_table2(args)
    print()
    cmd_table1(args)
    print()
    cmd_table4(args)
    print()
    cmd_figure7(args)
    study = _study(args.full, args.workers, not args.no_cache)
    print(render_speedups(study, FIGURE_APPS, apu=True,
                          title="Figure 8: speedup over 4-core OpenMP on the APU"))
    print()
    print(render_speedups(study, FIGURE_APPS, apu=False,
                          title="Figure 9: speedup over 4-core OpenMP on the dGPU"))
    print()
    for apu in (True, False):
        print(render_figure10(compute_productivity(study, ALL_APPS, apu=apu), FIGURE_APPS))
        print()
    cmd_figure11(args)


def _add_executor_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="shard the run matrix over N worker processes")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the kernel memo cache (recompute everything)")


def _add_fault_flags(p: argparse.ArgumentParser, resume: bool = True) -> None:
    p.add_argument("--retries", type=int, default=3, metavar="N",
                   help="total attempts per run before quarantine (1 disables "
                        "retries; default 3)")
    p.add_argument("--run-timeout", type=float, default=None, metavar="SEC",
                   help="per-run watchdog budget in wall seconds "
                        "(default: no watchdog)")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="deterministic fault injection, e.g. "
                        "'crash:0.2,timeout:0.1' (kinds: crash, timeout, "
                        "corrupt, poison, abort, hang, interrupt)")
    p.add_argument("--fault-seed", type=int, default=0, metavar="N",
                   help="seed for the fault-injection draws (same seed, "
                        "same faults)")
    if resume:
        p.add_argument("--resume", default=None, metavar="FILE",
                       help="checkpoint journal: completed runs are journaled "
                            "here and restored instead of re-executed")


def _add_telemetry_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="record telemetry and write a Chrome trace_event JSON "
                        "(open in Perfetto / chrome://tracing)")
    p.add_argument("--metrics", default=None, metavar="FILE",
                   help="record telemetry and write the metrics registry "
                        "(.json, or Prometheus text for any other suffix)")


#: ``repro --help`` sections: every command, grouped, one line each.
COMMAND_SECTIONS: tuple[tuple[str, tuple[tuple[str, str], ...]], ...] = (
    ("paper artifacts", (
        ("table1", "Table I: measured application characteristics"),
        ("table2", "Tables II & III: platform and compiler specs"),
        ("table4", "Table IV: SLOC per programming model, measured vs paper"),
        ("figure7", "Figure 7: frequency-scaling grids (per app)"),
        ("figure8", "Figure 8: APU speedups over 4-core OpenMP"),
        ("figure9", "Figure 9: dGPU speedups over 4-core OpenMP"),
        ("figure10", "Figure 10: relative productivity (Eq. 1)"),
        ("figure11", "Figure 11: optimization-feature matrix"),
        ("ablation", "transfer decomposition of one app on the dGPU"),
        ("all", "every table and figure in sequence"),
    )),
    ("studies & data", (
        ("study", "the full comparison study through the parallel executor"),
        ("sweep", "Figure 7 frequency sweeps through the parallel executor"),
        ("characterize", "Table I through the vectorized replay engine"),
        ("export", "dump study (and sweep) records to JSON or CSV"),
    )),
    ("performance & telemetry", (
        ("profile", "phase breakdown plus Chrome-trace/metrics artifacts"),
        ("serve", "async HTTP prediction service over the performance model"),
        ("loadtest", "drive a prediction server; record BENCH_serve.json"),
        ("benchdiff", "compare fresh bench JSON against committed baselines"),
    )),
)

#: One-line description per command (drives both help layers).
COMMAND_HELP = {
    name: blurb
    for _section, commands in COMMAND_SECTIONS
    for name, blurb in commands
}


def _command_epilog() -> str:
    lines = ["commands:"]
    for section, commands in COMMAND_SECTIONS:
        lines.append(f"\n  {section}:")
        for name, blurb in commands:
            lines.append(f"    {name:<13} {blurb}")
    lines.append("\nrun 'repro COMMAND --help' for the options of one command")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of 'Exploring Parallel "
        "Programming Models for Heterogeneous Computing Systems' (IISWC 2015).",
        epilog=_command_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="COMMAND")
    for name, fn, needs_full, needs_app in (
        ("table1", cmd_table1, False, False),
        ("table2", cmd_table2, False, False),
        ("table4", cmd_table4, False, False),
        ("figure7", cmd_figure7, False, True),
        ("figure8", cmd_figure8, True, False),
        ("figure9", cmd_figure9, True, False),
        ("figure10", cmd_figure10, True, False),
        ("figure11", cmd_figure11, False, False),
        ("ablation", cmd_ablation, False, True),
        ("all", cmd_all, True, False),
    ):
        p = sub.add_parser(name, description=COMMAND_HELP[name])
        p.set_defaults(func=fn, full=False, app=None, chart=False,
                       workers=1, no_cache=False, trace=None, metrics=None)
        if needs_full:
            p.add_argument("--full", action="store_true",
                           help="use the exact paper problem sizes (slow)")
            _add_executor_flags(p)
        if name in ("figure8", "figure9", "figure10"):
            _add_telemetry_flags(p)
        if name in ("figure8", "figure9"):
            p.add_argument("--chart", action="store_true",
                           help="render as bar charts instead of a table")
        if needs_app:
            p.add_argument("--app", choices=FIGURE_APPS, default=None)
    study = sub.add_parser(
        "study",
        description=COMMAND_HELP["study"] + ", with executor stats")
    study.set_defaults(func=cmd_study)
    study.add_argument("--paper-scale", action="store_true",
                       help="use the exact Table I problem sizes (slow)")
    study.add_argument("--per-run", action="store_true",
                       help="print per-run wall times and cache counters")
    study.add_argument("--out", default=None,
                       help="also export the study records as JSON")
    study.add_argument("--model", action="append", default=None, metavar="NAME",
                       help="compare this model instead of the paper's three "
                            "(repeatable; aliases like 'omp-offload' accepted)")
    study.add_argument("--platform", action="append", default=None,
                       choices=PLATFORMS,
                       help="run on this platform selector instead of APU+dGPU "
                            "(repeatable; 'v100' is the second-vendor device)")
    study.add_argument("--engine", choices=("vector", "scalar"), default="vector",
                       help="pricing engine: 'vector' lowers the matrix into a "
                            "spec lattice and prices all cells columnar; "
                            "'scalar' simulates each cell (bit-identical, "
                            "slower — the differential oracle)")
    _add_executor_flags(study)
    _add_telemetry_flags(study)
    _add_fault_flags(study)
    char = sub.add_parser(
        "characterize",
        description="Table I through the vectorized (or scalar) replay engine")
    char.set_defaults(func=cmd_characterize)
    char.add_argument("--engine", choices=("vector", "scalar"), default="vector",
                      help="trace-replay and sweep-pricing engine "
                           "(bit-identical results; vector is the fast default)")
    char.add_argument("--bench", default=None, metavar="FILE",
                      help="also run the cache-replay benchmark and write the "
                           "perf baseline JSON (e.g. BENCH_cache.json)")
    char.add_argument("--bench-repeats", type=int, default=3, metavar="N",
                      help="best-of-N timing repeats per engine benchmark")
    char.add_argument("--bench-reps", type=int, default=5, metavar="N",
                      help="repetitions in the repeated-characterization "
                           "benchmark protocol")
    _add_executor_flags(char)
    _add_telemetry_flags(char)
    _add_fault_flags(char, resume=False)
    sweep = sub.add_parser(
        "sweep",
        description=COMMAND_HELP["sweep"] + ", with executor stats")
    sweep.set_defaults(func=cmd_sweep)
    sweep.add_argument("--app", choices=FIGURE_APPS, default=None)
    sweep.add_argument("--engine", choices=("vector", "scalar"), default="vector",
                       help="pricing engine: 'vector' prices the whole grid "
                            "from one captured schedule; 'scalar' simulates "
                            "every point (bit-identical)")
    _add_executor_flags(sweep)
    _add_telemetry_flags(sweep)
    _add_fault_flags(sweep)
    profile = sub.add_parser(
        "profile",
        description="run a study/sweep with telemetry: phase breakdown, "
                    "Chrome trace, metrics registry")
    profile.set_defaults(func=cmd_profile, full=False)
    profile.add_argument("target",
                         choices=("figure8", "figure9", "study", "sweep",
                                  "characterize"),
                         help="what to profile (figure8/figure9/study run the "
                              "comparison study; sweep runs one Figure 7 grid; "
                              "characterize regenerates Table I)")
    profile.add_argument("--app", choices=FIGURE_APPS, default=None,
                         help="app for the sweep target (default LULESH)")
    profile.add_argument("--full", action="store_true",
                         help="use the exact paper problem sizes (slow)")
    profile.add_argument("--top", type=int, default=10, metavar="N",
                         help="rows in the top-span breakdown")
    _add_executor_flags(profile)
    _add_telemetry_flags(profile)
    export = sub.add_parser("export", description=COMMAND_HELP["export"])
    export.set_defaults(func=cmd_export, full=False, app=None)
    export.add_argument("--out", default="results.json",
                        help="output path (.json or .csv)")
    export.add_argument("--full", action="store_true")
    export.add_argument("--sweeps", action="store_true",
                        help="include the Figure 7 sweep grids")
    _add_executor_flags(export)
    serve = sub.add_parser(
        "serve",
        description="serve /v1/predict, /v1/study and /v1/batch over the "
                    "performance model: micro-batched, admission-controlled, "
                    "Prometheus-instrumented; SIGTERM drains gracefully. "
                    "--shards N runs a horizontally sharded tier over a "
                    "shared persistent result store")
    serve.set_defaults(func=cmd_serve)
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8351, metavar="N",
                       help="listen port; 0 picks an ephemeral one "
                            "(default 8351)")
    serve.add_argument("--window-ms", type=float, default=2.0, metavar="MS",
                       help="micro-batching window: how long a cold request "
                            "waits for companions (default 2 ms)")
    serve.add_argument("--max-batch", type=int, default=32, metavar="N",
                       help="flush a batch early at N queued specs")
    serve.add_argument("--max-queue", type=int, default=64, metavar="N",
                       help="admission bound: shed (429 + Retry-After) past "
                            "N predictions in flight")
    serve.add_argument("--deadline", type=float, default=30.0, metavar="SEC",
                       help="per-request wall-clock budget; over it the "
                            "client gets a 504")
    serve.add_argument("--retries", type=int, default=2, metavar="N",
                       help="engine attempts per run before a 500")
    serve.add_argument("--run-timeout", type=float, default=None, metavar="SEC",
                       help="per-engine-run watchdog (default: none; the "
                            "HTTP deadline still applies)")
    serve.add_argument("--engine", choices=("vector", "scalar"), default="vector",
                       help="cold-batch pricing engine: 'vector' prices each "
                            "micro-batch window columnar; 'scalar' runs specs "
                            "one by one (bit-identical)")
    serve.add_argument("--shards", type=int, default=1, metavar="N",
                       help="run N server processes over a shared store "
                            "behind a content-hash router (default 1: a "
                            "single in-process server)")
    serve.add_argument("--store", default=None, metavar="DIR",
                       help="persistent content-addressed result store; "
                            "restarts boot warm from it (default: in-memory "
                            "only; sharded tiers get an ephemeral one)")
    serve.add_argument("--warm", choices=("none", "load", "presets"),
                       default="load",
                       help="boot-time warm-up: 'load' seeds memory from the "
                            "store, 'presets' additionally pre-prices the "
                            "reachable preset lattice (default load)")
    serve.add_argument("--warm-scales", default="bench", metavar="LIST",
                       help="comma-separated scale presets the 'presets' "
                            "warm-up prices (default bench)")
    serve.add_argument("--max-study-runs", type=int, default=None, metavar="N",
                       help="cap on the run matrix one /v1/study may expand "
                            "to (default 64, or REPRO_SERVE_MAX_STUDY_RUNS)")
    serve.add_argument("--max-batch-cells", type=int, default=None, metavar="N",
                       help="cap on cells per /v1/batch request (default "
                            "512, or REPRO_SERVE_MAX_BATCH_CELLS)")
    loadtest = sub.add_parser(
        "loadtest",
        description="drive a prediction server (an existing --url, a "
                    "--spawn'd loopback one, or a --shards N tier) with warm "
                    "queries and report throughput and latency percentiles; "
                    "with --shards the full tier baseline is recorded "
                    "(predict capacity, bulk cells/s, restart drill)")
    loadtest.set_defaults(func=cmd_loadtest)
    target = loadtest.add_mutually_exclusive_group()
    target.add_argument("--url", action="append", default=None, metavar="URL",
                        help="base URL of a running server; repeat to "
                             "round-robin over several (e.g. a tier's shards)")
    target.add_argument("--spawn", action="store_true",
                        help="spawn a loopback server for the run "
                             "(the default when --url is absent)")
    target.add_argument("--shards", type=int, default=None, metavar="N",
                        help="spawn an N-shard tier over a shared store and "
                             "record the full tier baseline (predict + bulk "
                             "+ restart drill)")
    loadtest.add_argument("--route", choices=("predict", "batch"),
                          default="predict",
                          help="traffic shape: per-request /v1/predict, or "
                               "bulk /v1/batch (throughput counts cells/s)")
    loadtest.add_argument("--batch-cells", type=int, default=64, metavar="N",
                          help="cells per /v1/batch request (default 64)")
    loadtest.add_argument("--store", default=None, metavar="DIR",
                          help="persistent result store for spawned servers "
                               "(sharded runs default to an ephemeral one)")
    loadtest.add_argument("--warm", choices=("none", "load", "presets"),
                          default="load",
                          help="warm-up mode of spawned servers (default load)")
    loadtest.add_argument("--mode", choices=("closed", "open"),
                          default="closed",
                          help="closed: back-to-back per connection (capacity);"
                               " open: fixed-rate arrivals (latency under "
                               "offered load)")
    loadtest.add_argument("--concurrency", type=int, default=8, metavar="N",
                          help="client connections (default 8)")
    loadtest.add_argument("--duration", type=float, default=3.0, metavar="SEC",
                          help="measured window length (default 3 s)")
    loadtest.add_argument("--rate", type=float, default=None, metavar="RPS",
                          help="offered request rate for --mode open")
    loadtest.add_argument("--app", choices=FIGURE_APPS, default=None,
                          help="application to query (default: XSBench for "
                               "predict, every proxy app for batch)")
    loadtest.add_argument("--model", default=None,
                          help="restrict to one programming model "
                               "(default: rotate OpenCL/C++ AMP/OpenACC)")
    loadtest.add_argument("--platform", choices=PLATFORMS, default=None,
                          help="restrict to one platform (default: apu+dgpu)")
    loadtest.add_argument("--precision", choices=("single", "double"),
                          default=None,
                          help="restrict to one precision (default: both)")
    loadtest.add_argument("--scale", choices=("bench", "paper", "sweep"),
                          default="bench",
                          help="problem-size preset in the query bodies")
    loadtest.add_argument("--cold", action="store_true",
                          help="skip the warmup pass (measure cold-cache "
                               "behaviour)")
    loadtest.add_argument("--max-queue", type=int, default=64, metavar="N",
                          help="admission bound of the spawned server")
    loadtest.add_argument("--window-ms", type=float, default=2.0, metavar="MS",
                          help="batch window of the spawned server")
    loadtest.add_argument("--bench", default=None, metavar="FILE",
                          help="write the serving-perf baseline JSON "
                               "(e.g. BENCH_serve.json)")
    loadtest.add_argument("--breakdown", action="store_true",
                          help="scrape /metrics before and after the run and "
                               "report per-segment latency percentiles (queue "
                               "wait vs batch wait vs engine vs serialize) "
                               "from the server's trace-segment histograms; "
                               "with --shards also prints the /v1/shards "
                               "health table (supervision + breaker state)")
    loadtest.add_argument("--chaos", action="store_true",
                          help="run the self-healing chaos drill instead of a "
                               "plain measurement: arm a seeded fault plan in "
                               "a --shards tier (default 2), drive load with "
                               "a bit-identity checker, then assert recovery "
                               "(zero wrong answers, bounded errors, "
                               "convergence, zero cold misses)")
    loadtest.add_argument("--chaos-plan", default=None, metavar="SPEC",
                          help="fault plan for --chaos, e.g. "
                               "'crash:0.004,reset:0.01,slow_s:0.02' "
                               "(default: the standard drill storm)")
    loadtest.add_argument("--chaos-seed", type=int, default=None, metavar="N",
                          help="deterministic seed of the --chaos fault "
                               "schedule (default: the standard drill seed)")
    loadtest.add_argument("--settle-timeout", type=float, default=60.0,
                          metavar="SEC",
                          help="max seconds to wait for all-shards-healthy "
                               "after the --chaos storm (default 60)")
    benchdiff = sub.add_parser(
        "benchdiff",
        description="compare freshly generated BENCH_*.json files against "
                    "the committed baselines with per-metric tolerance "
                    "bands; exits 1 on any regression")
    benchdiff.set_defaults(func=cmd_benchdiff)
    benchdiff.add_argument("candidates", nargs="+", metavar="FILE",
                           help="candidate bench JSON files (matched to "
                                "baselines by basename: BENCH_cache.json, "
                                "BENCH_study.json, BENCH_serve.json)")
    benchdiff.add_argument("--baseline-dir", default=".", metavar="DIR",
                           help="directory holding the committed baselines "
                                "(default: the current directory)")
    benchdiff.add_argument("--tolerance-scale", type=float, default=1.0,
                           metavar="X",
                           help="widen every ratio band by X (for slow, noisy "
                                "CI runners; correctness bands never widen)")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        code = args.func(args)
    except ExecutionInterrupted as exc:
        print("\ninterrupted; partial progress:", file=sys.stderr)
        print(exc.stats.summary(), file=sys.stderr)
        resume = getattr(args, "resume", None)
        if resume:
            print(f"{exc.completed} completed runs journaled; rerun with "
                  f"--resume {resume} to continue", file=sys.stderr)
        else:
            print("no checkpoint journal (use --resume FILE to make "
                  "interrupted studies resumable)", file=sys.stderr)
        return 130
    return int(code or 0)


if __name__ == "__main__":
    sys.exit(main())
