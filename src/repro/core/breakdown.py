"""Per-kernel time breakdown of one application run.

Section IV discusses each proxy app in terms of its dominant kernels
("Advancing the node quantities is the most computationally intensive
part", "Computation of forces accounts for more than 90% of total
execution time").  This module aggregates the simulator's per-launch
records into that view.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.base import ProxyApp
from ..hardware.specs import Precision
from .study import run_port


@dataclass(frozen=True)
class KernelShare:
    """Aggregated cost of one kernel across a run."""

    name: str
    launches: int
    seconds: float
    share: float  # fraction of total kernel time
    limited_by: str  # dominant limiter across its launches


def kernel_breakdown(
    app: ProxyApp,
    config: object,
    model: str = "OpenCL",
    apu: bool = False,
    precision: Precision = Precision.SINGLE,
) -> list[KernelShare]:
    """Kernel-time shares of one run, largest first."""
    run = run_port(app, model, apu, precision, config, projection=True)
    by_name: dict[str, dict[str, object]] = {}
    for record in run.counters.kernels:
        slot = by_name.setdefault(
            record.name, {"seconds": 0.0, "launches": 0, "limits": {}}
        )
        slot["seconds"] += record.seconds
        slot["launches"] += 1
        limits = slot["limits"]
        limits[record.limited_by] = limits.get(record.limited_by, 0) + 1
    total = sum(slot["seconds"] for slot in by_name.values())
    shares = [
        KernelShare(
            name=name,
            launches=slot["launches"],
            seconds=slot["seconds"],
            share=slot["seconds"] / total if total else 0.0,
            limited_by=max(slot["limits"], key=slot["limits"].get),
        )
        for name, slot in by_name.items()
    ]
    return sorted(shares, key=lambda s: s.seconds, reverse=True)


def render_breakdown(shares: list[KernelShare], top: int = 10) -> str:
    """Text table of the largest kernels."""
    from .report import format_table

    rows = [
        [s.name, str(s.launches), f"{s.seconds * 1e3:.3f} ms", f"{s.share:.1%}", s.limited_by]
        for s in shares[:top]
    ]
    return format_table(
        ["Kernel", "Launches", "Time", "Share", "Limited by"], rows,
        title="Per-kernel breakdown",
    )
