"""Per-kernel and per-phase time breakdown of one application run.

Section IV discusses each proxy app in terms of its dominant kernels
("Advancing the node quantities is the most computationally intensive
part", "Computation of forces accounts for more than 90% of total
execution time").  This module derives that view from the telemetry
layer: the run executes under a :class:`~repro.obs.spans.SpanRecorder`
and the decomposition is an aggregation of the recorded spans — the
same spans ``repro profile`` exports — rather than a second phase-math
path over :class:`~repro.engine.counters.PerfCounters`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.base import ProxyApp
from ..hardware.specs import Precision
from ..obs.spans import Span, SpanRecorder, recording
from .study import run_port


@dataclass(frozen=True)
class KernelShare:
    """Aggregated cost of one kernel across a run."""

    name: str
    launches: int
    seconds: float
    share: float  # fraction of total kernel time
    limited_by: str  # dominant limiter across its launches


@dataclass(frozen=True)
class PhaseShare:
    """Aggregated cost of one phase (kernel/transfer/launch) of a run."""

    phase: str
    seconds: float
    share: float  # fraction of total simulated time


def record_run(
    app: ProxyApp,
    config: object,
    model: str = "OpenCL",
    apu: bool = False,
    precision: Precision = Precision.SINGLE,
) -> list[Span]:
    """Run one port under a fresh span recorder; returns its spans."""
    recorder = SpanRecorder(meta={"app": app.name, "model": model})
    with recording(recorder):
        run_port(app, model, apu, precision, config, projection=True)
    return recorder.spans


def kernel_breakdown(
    app: ProxyApp,
    config: object,
    model: str = "OpenCL",
    apu: bool = False,
    precision: Precision = Precision.SINGLE,
) -> list[KernelShare]:
    """Kernel-time shares of one run, largest first."""
    return kernel_shares(record_run(app, config, model, apu, precision))


def kernel_shares(spans: list[Span]) -> list[KernelShare]:
    """Aggregate recorded kernel spans into per-kernel shares."""
    by_name: dict[str, dict[str, object]] = {}
    for span in spans:
        if span.category != "kernel":
            continue
        slot = by_name.setdefault(
            span.name, {"seconds": 0.0, "launches": 0, "limits": {}}
        )
        slot["seconds"] += span.sim_seconds
        slot["launches"] += 1
        limited = span.args_dict.get("limited_by", "unknown")
        limits = slot["limits"]
        limits[limited] = limits.get(limited, 0) + 1
    total = sum(slot["seconds"] for slot in by_name.values())
    shares = [
        KernelShare(
            name=name,
            launches=slot["launches"],
            seconds=slot["seconds"],
            share=slot["seconds"] / total if total else 0.0,
            limited_by=max(slot["limits"], key=slot["limits"].get),
        )
        for name, slot in by_name.items()
    ]
    return sorted(shares, key=lambda s: s.seconds, reverse=True)


def phase_breakdown(spans: list[Span]) -> list[PhaseShare]:
    """Simulated time by phase (kernel / transfer / launch), largest
    first — the decomposition Sec. VI-A argues from."""
    by_phase: dict[str, float] = {}
    for span in spans:
        if span.category == "run":
            continue
        by_phase[span.category] = by_phase.get(span.category, 0.0) + span.sim_seconds
    total = sum(by_phase.values())
    shares = [
        PhaseShare(phase=phase, seconds=seconds, share=seconds / total if total else 0.0)
        for phase, seconds in by_phase.items()
    ]
    return sorted(shares, key=lambda s: s.seconds, reverse=True)


def render_breakdown(shares: list[KernelShare], top: int = 10) -> str:
    """Text table of the largest kernels."""
    from .report import format_table

    rows = [
        [s.name, str(s.launches), f"{s.seconds * 1e3:.3f} ms", f"{s.share:.1%}", s.limited_by]
        for s in shares[:top]
    ]
    return format_table(
        ["Kernel", "Launches", "Time", "Share", "Limited by"], rows,
        title="Per-kernel breakdown",
    )


def render_phases(shares: list[PhaseShare]) -> str:
    """Text table of the phase decomposition."""
    from .report import format_table

    rows = [[s.phase, f"{s.seconds * 1e3:.3f} ms", f"{s.share:.1%}"] for s in shares]
    return format_table(["Phase", "Time", "Share"], rows, title="Per-phase breakdown")
