"""Frequency-scaling characterization (Figure 7).

"Figure 7 demonstrates how their performance scales with memory and
core frequencies on a GPU, thereby providing an insight into the
application's compute and bandwidth requirements."

The sweep runs each application's OpenCL port on the discrete GPU at
every (core, memory) frequency pair of the paper's grid and reports
performance normalized to the slowest point (core=200 MHz at the
lowest memory clock).  The slopes classify boundedness: compute-bound
apps scale with the core clock, memory-bound apps with the memory
clock, balanced apps with both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..apps.base import ProxyApp
from ..exec.checkpoint import CheckpointJournal
from ..exec.executor import ExecStats, execute_with_engine
from ..exec.faults import FaultPlan, RunError
from ..exec.plan import sweep_runs
from ..exec.retry import RetryPolicy
from ..hardware.frequency import PAPER_CORE_SWEEP_MHZ, PAPER_MEMORY_SWEEP_MHZ
from ..hardware.specs import Precision
from ..obs.export import Timeline


@dataclass(frozen=True)
class SweepPoint:
    """One measured grid point."""

    core_mhz: float
    memory_mhz: float
    seconds: float
    normalized_performance: float


@dataclass
class SweepResult:
    """The full grid for one application (one subplot of Figure 7)."""

    app: str
    points: list[SweepPoint]
    #: Executor observability for the grid run; ``None`` when built by hand.
    stats: ExecStats | None = None
    #: Merged telemetry timeline; ``None`` unless requested.
    telemetry: Timeline | None = None
    #: Grid points lost to quarantined runs (absent from ``points``).
    failures: list[RunError] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Whether every requested grid point was measured."""
        return not self.failures

    def series(self, memory_mhz: float) -> list[SweepPoint]:
        """One memory-frequency curve, ordered by core frequency."""
        line = [p for p in self.points if p.memory_mhz == memory_mhz]
        return sorted(line, key=lambda p: p.core_mhz)

    def get(self, core_mhz: float, memory_mhz: float) -> SweepPoint:
        for p in self.points:
            if p.core_mhz == core_mhz and p.memory_mhz == memory_mhz:
                return p
        raise KeyError(f"no sweep point at core={core_mhz}, mem={memory_mhz}")

    def core_sensitivity(self) -> float:
        """Relative speedup from the core-clock sweep at max memory clock."""
        line = self.series(max(p.memory_mhz for p in self.points))
        return line[0].seconds / line[-1].seconds

    def memory_sensitivity(self) -> float:
        """Relative speedup from the memory-clock sweep at max core clock."""
        core_max = max(p.core_mhz for p in self.points)
        column = sorted(
            (p for p in self.points if p.core_mhz == core_max),
            key=lambda p: p.memory_mhz,
        )
        return column[0].seconds / column[-1].seconds

    def classify(self) -> str:
        """Boundedness classification from the sweep slopes (Table I)."""
        core = self.core_sensitivity()
        memory = self.memory_sensitivity()
        if core > 1.5 * memory:
            return "Compute"
        if memory > 1.5 * core:
            return "Memory"
        return "Balanced"


def run_sweep(
    app: ProxyApp,
    config: object,
    precision: Precision = Precision.SINGLE,
    core_grid: tuple[float, ...] = PAPER_CORE_SWEEP_MHZ,
    memory_grid: tuple[float, ...] = PAPER_MEMORY_SWEEP_MHZ,
    model: str = "OpenCL",
    max_workers: int = 1,
    use_cache: bool = True,
    telemetry: bool = False,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    checkpoint: str | Path | CheckpointJournal | None = None,
    engine: str = "scalar",
) -> SweepResult:
    """Sweep one application over the (core, memory) frequency grid.

    Grid points are independent simulations, flattened into run
    descriptors and executed by :mod:`repro.exec` (``max_workers``
    shards them over a process pool; results are identical for every
    worker count).  ``policy``/``faults``/``checkpoint`` configure the
    fault-tolerance layer (see :func:`repro.exec.execute`): quarantined
    grid points are dropped from ``points`` and reported in
    ``.failures`` instead of aborting the sweep.

    ``engine="vector"`` prices the whole grid from one captured
    schedule (clock overrides never change which kernels launch);
    ``"scalar"`` simulates every point.  Points are bit-identical
    either way.
    """
    runs = sweep_runs(app.name, config, precision, core_grid, memory_grid, model)
    outcomes, stats = execute_with_engine(
        engine,
        runs,
        max_workers=max_workers,
        use_cache=use_cache,
        telemetry=telemetry,
        policy=policy,
        faults=faults,
        checkpoint=checkpoint,
    )

    seconds_grid: dict[tuple[float, float], float] = {}
    for outcome in outcomes:
        if outcome is None:  # quarantined: reported via failures
            continue
        spec = outcome.spec
        # Kernel time only: Figure 7 characterizes device execution,
        # and PCIe transfer time is frequency-invariant noise here.
        seconds_grid[(spec.core_mhz, spec.memory_mhz)] = outcome.result.kernel_seconds

    if not seconds_grid:
        return SweepResult(
            app=app.name,
            points=[],
            stats=stats,
            telemetry=stats.timeline,
            failures=list(stats.failures),
        )
    # Normalize to the paper's anchor (slowest corner); if that exact
    # point was quarantined, fall back to the slowest surviving point
    # so the rest of the grid still normalizes meaningfully.
    anchor = seconds_grid.get((min(core_grid), min(memory_grid)))
    slowest = anchor if anchor is not None else max(seconds_grid.values())
    points = [
        SweepPoint(
            core_mhz=core,
            memory_mhz=memory,
            seconds=seconds,
            normalized_performance=slowest / seconds,
        )
        for (core, memory), seconds in seconds_grid.items()
    ]
    return SweepResult(
        app=app.name,
        points=points,
        stats=stats,
        telemetry=stats.timeline,
        failures=list(stats.failures),
    )
