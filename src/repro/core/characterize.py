"""Application characterization (Table I).

Reproduces the measurement methodology behind Table I:

* **LLC miss rate** — each application's dominant kernel generates a
  synthetic address trace from its access pattern *at the paper's
  problem size* (miss rates are working-set dependent), replayed
  through the discrete GPU's L2 cache model (``repro.hardware.cache``).
* **IPC** — per-core retired instructions per cycle of the 4-thread
  OpenMP run on the host CPU (Table I's profile is a CPU-counter
  characterization: its 0.14-0.88 range matches a 4-wide x86 core, not
  a 2048-lane GPU).
* **Number of kernels** — from the application descriptor.
* **Boundedness** — classified from the Figure 7 frequency sweep.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Sequence

from ..apps.base import ProxyApp
from ..engine.kernel import KernelSpec
from ..engine.trace import DEFAULT_REPLAY_ENGINE, replay_pattern
from ..exec.executor import ExecStats
from ..exec.faults import FaultPlan, RunError
from ..exec.retry import RetryPolicy
from ..hardware.device import make_dgpu_platform
from ..hardware.specs import R9_280X, Precision
from ..models.base import ExecutionContext
from ..obs.export import Timeline
from .sweep import SweepResult, run_sweep

#: Table I of the paper, verbatim, for side-by-side reporting.
PAPER_TABLE1 = {
    "LULESH": {"miss_rate": 0.11, "ipc": 0.65, "kernels": 28, "boundedness": "Balanced"},
    "CoMD": {"miss_rate": 0.26, "ipc": 0.69, "kernels": 3, "boundedness": "Compute"},
    "XSBench": {"miss_rate": 0.53, "ipc": 0.14, "kernels": 1, "boundedness": "Compute"},
    "miniFE": {"miss_rate": 0.39, "ipc": 0.88, "kernels": 3, "boundedness": "Memory"},
}

#: The kernel whose access pattern dominates each app's LLC behaviour.
DOMINANT_KERNEL = {
    "read-benchmark": "readmem.block_sum",
    "LULESH": "lulesh.calc_face_normals",
    "CoMD": "comd.lj_force",
    "XSBench": "xsbench.lookup",
    "miniFE": "minife.spmv",
}


@dataclass(frozen=True)
class AppCharacterization:
    """One row of Table I."""

    app: str
    llc_miss_rate: float
    ipc: float
    n_kernels: int
    boundedness: str


def measure_miss_rate(spec: KernelSpec, engine: str = DEFAULT_REPLAY_ENGINE) -> float:
    """Replay the kernel's access pattern through the R9 280X L2.

    ``engine`` selects the replay implementation (``"vector"`` batch
    simulator or the ``"scalar"`` reference); both are bit-identical,
    so the choice affects wall time only.
    """
    result = replay_pattern(spec.access, R9_280X.l2_cache, engine=engine)
    return result.miss_rate


def measure_ipc(app: ProxyApp, config: object, precision: Precision = Precision.SINGLE, threads: int = 4) -> float:
    """Per-core IPC of the 4-thread OpenMP run on the host CPU."""
    ctx = ExecutionContext(
        platform=make_dgpu_platform(), precision=precision, execute_kernels=False
    )
    app.ports["OpenMP"](ctx, config)
    counters = ctx.counters
    if counters.cycles == 0:
        raise RuntimeError(f"{app.name}: no CPU cycles recorded")
    return counters.instructions / (counters.cycles * threads)


def dominant_spec(app: ProxyApp, config: object, precision: Precision = Precision.SINGLE) -> KernelSpec:
    """The characterization spec of the app's dominant kernel."""
    kernel_name = DOMINANT_KERNEL[app.name]
    if app.name == "read-benchmark":
        from ..apps.readmem import read_kernel_spec

        return read_kernel_spec(config, precision)
    if app.name == "LULESH":
        from ..apps.lulesh import kernel_specs

        return kernel_specs(config, precision)[kernel_name]
    if app.name == "CoMD":
        from ..apps.comd import kernel_specs

        return kernel_specs(config, precision)[kernel_name]
    if app.name == "XSBench":
        from ..apps.xsbench import lookup_kernel_spec

        return lookup_kernel_spec(config, precision)
    if app.name == "miniFE":
        from ..apps.minife import kernel_specs

        return kernel_specs(config, precision)[kernel_name]
    raise KeyError(f"unknown application {app.name!r}")


def characterize(
    app: ProxyApp,
    config: object,
    sweep_config: object | None = None,
    sweep: SweepResult | None = None,
    max_workers: int = 1,
    use_cache: bool = True,
    engine: str = DEFAULT_REPLAY_ENGINE,
    run_engine: str = "scalar",
) -> AppCharacterization:
    """Produce one Table I row for ``app``.

    The miss rate is always measured at the paper's problem size (it
    depends on the working set); IPC and boundedness use the supplied
    configs.  ``max_workers``/``use_cache`` configure the executor for
    the boundedness sweep; ``engine`` picks the trace-replay
    implementation and ``run_engine`` the sweep pricing engine
    (``"scalar"`` or columnar ``"vector"`` — bit-identical either way).
    """
    spec = dominant_spec(app, app.paper_config())
    if sweep is None:
        sweep = run_sweep(
            app,
            sweep_config if sweep_config is not None else config,
            core_grid=(200.0, 1000.0),
            memory_grid=(480.0, 1250.0),
            max_workers=max_workers,
            use_cache=use_cache,
            engine=run_engine,
        )
    return AppCharacterization(
        app=app.name,
        llc_miss_rate=measure_miss_rate(spec, engine=engine),
        ipc=measure_ipc(app, config),
        n_kernels=app.n_kernels,
        boundedness=sweep.classify(),
    )


@dataclass(frozen=True)
class CharacterizationResult:
    """A full Table I regeneration with its executor observability."""

    rows: tuple[AppCharacterization, ...]
    stats: ExecStats
    telemetry: Timeline | None = None
    #: Quarantined sweep runs.  An app whose boundedness sweep lost
    #: points it needs has no row; the failures say why.
    failures: tuple[RunError, ...] = ()

    @property
    def complete(self) -> bool:
        """Whether every requested app produced a row."""
        return not self.failures


def characterize_apps(
    apps: Sequence[ProxyApp],
    configs: dict[str, object] | None = None,
    sweep_configs: dict[str, object] | None = None,
    max_workers: int = 1,
    use_cache: bool = True,
    engine: str = DEFAULT_REPLAY_ENGINE,
    telemetry: bool = False,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    run_engine: str = "scalar",
) -> CharacterizationResult:
    """Characterize several apps, with executor stats aggregated.

    Each app's boundedness sweep fans through the parallel executor
    (``max_workers``); miss-rate replays go through the selected
    ``engine`` and the trace memo cache, whose hit/miss delta for the
    whole batch is folded into the returned stats.  ``run_engine``
    selects the sweep pricing engine (scalar oracle or columnar).
    Results are bit-identical for every worker count, engine and
    cache setting.

    ``policy``/``faults`` configure the fault-tolerance layer of each
    boundedness sweep.  An app whose sweep lost the grid points its
    classification needs is dropped from ``rows``; the quarantined
    runs are aggregated in ``.failures``.
    """
    from ..engine.memo import TRACE_CACHE, cache_disabled
    from .configs import bench_configs as _bench_configs
    from .configs import sweep_configs as _sweep_configs

    if configs is None:
        configs = _bench_configs()
    if sweep_configs is None:
        sweep_configs = _sweep_configs()

    trace_before = TRACE_CACHE.snapshot()
    rows: list[AppCharacterization] = []
    failures: list[RunError] = []
    stats: ExecStats | None = None
    with cache_disabled() if not use_cache else nullcontext():
        for app in apps:
            sweep = run_sweep(
                app,
                sweep_configs[app.name],
                core_grid=(200.0, 1000.0),
                memory_grid=(480.0, 1250.0),
                max_workers=max_workers,
                use_cache=use_cache,
                telemetry=telemetry,
                policy=policy,
                faults=faults,
                engine=run_engine,
            )
            failures.extend(sweep.failures)
            stats = sweep.stats if stats is None else stats.merge(sweep.stats)
            if not sweep.complete:
                # The 2x2 sweep grid has no redundancy: any lost point
                # makes the boundedness slopes unmeasurable, so skip
                # the row rather than classify from a partial grid.
                continue
            rows.append(characterize(app, configs[app.name], sweep=sweep, engine=engine))
    if stats is None:
        stats = ExecStats()
    # The miss-rate replays run in this process, outside the executor:
    # fold their memo delta into the batch stats.
    trace_delta = TRACE_CACHE.snapshot().since(trace_before)
    stats = stats.merge(
        ExecStats(trace_hits=trace_delta.hits, trace_misses=trace_delta.misses)
    )
    return CharacterizationResult(
        rows=tuple(rows), stats=stats, telemetry=stats.timeline, failures=tuple(failures),
    )
