"""Ablation experiments: turn off one mechanism, measure what it cost.

The paper's Sec. VI attributes each performance gap to a specific
mechanism — compiler-managed transfers, missing LDS tiling, the CLAMP
LULESH bug.  These helpers flip exactly one knob at a time so the
attribution can be measured rather than argued.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..apps.base import ProxyApp, RunResult
from ..engine.kernel import KernelSpec
from ..engine.memo import cached_time_gpu_kernel
from ..hardware.device import Platform, make_dgpu_platform
from ..hardware.specs import Precision
from ..models import cppamp
from ..models.base import Capability, CompilerProfile, ExecutionContext
from .study import run_port


@dataclass(frozen=True)
class TransferDecomposition:
    """Kernel/transfer/overhead split of one run."""

    model: str
    kernel_seconds: float
    transfer_seconds: float
    overhead_seconds: float
    total_seconds: float
    bytes_moved: int

    @property
    def transfer_share(self) -> float:
        return self.transfer_seconds / self.total_seconds if self.total_seconds else 0.0


def decompose_transfers(
    app: ProxyApp,
    config: object,
    apu: bool = False,
    precision: Precision = Precision.SINGLE,
    models: tuple[str, ...] = ("OpenCL", "C++ AMP", "OpenACC"),
) -> dict[str, TransferDecomposition]:
    """Where does each model's time go on this workload?"""
    out = {}
    for model in models:
        run = run_port(app, model, apu, precision, config, projection=True)
        counters = run.counters
        out[model] = TransferDecomposition(
            model=model,
            kernel_seconds=counters.kernel_seconds,
            transfer_seconds=counters.transfer_seconds,
            overhead_seconds=counters.launch_overhead_seconds + counters.host_seconds,
            total_seconds=run.seconds,
            bytes_moved=counters.bytes_to_device + counters.bytes_to_host,
        )
    return out


def without_capabilities(profile: CompilerProfile, removed: Capability) -> CompilerProfile:
    """A copy of ``profile`` with some capabilities masked off."""
    return dataclasses.replace(profile, capabilities=profile.capabilities & ~removed)


def tiling_ablation(
    spec: KernelSpec,
    profile: CompilerProfile,
    platform: Platform | None = None,
    precision: Precision = Precision.SINGLE,
) -> tuple[float, float]:
    """(tiled_seconds, untiled_seconds) for one kernel under one
    toolchain, with LDS + tile barriers masked in the untiled case
    (the paper's 'tiles improved CoMD by almost 3x' experiment)."""
    platform = platform or make_dgpu_platform()
    untiled_profile = without_capabilities(profile, Capability.LDS | Capability.FINE_SYNC)
    tiled = cached_time_gpu_kernel(profile.lower(spec), platform.gpu, precision).seconds
    untiled = cached_time_gpu_kernel(untiled_profile.lower(spec), platform.gpu, precision).seconds
    return tiled, untiled


def lulesh_compiler_bug_ablation(
    config: object,
    precision: Precision = Precision.SINGLE,
) -> tuple[RunResult, RunResult]:
    """(buggy, fixed) C++ AMP LULESH runs on the dGPU.

    ``buggy`` reproduces the paper (CLAMP v0.6.0 cannot compile
    calc_kinematics, which falls back to the CPU); ``fixed`` pretends
    the compiler bug were repaired.
    """
    from ..apps.lulesh import APP as LULESH

    def run(workaround: bool) -> RunResult:
        original = cppamp.AmpRuntime.__init__

        def patched(self, ctx, workaround_known_bugs=False):
            original(self, ctx, workaround_known_bugs=workaround)

        cppamp.AmpRuntime.__init__ = patched
        try:
            ctx = ExecutionContext(
                platform=make_dgpu_platform(), precision=precision, execute_kernels=False
            )
            return LULESH.ports["C++ AMP"](ctx, config)
        finally:
            cppamp.AmpRuntime.__init__ = original

    return run(workaround=False), run(workaround=True)
