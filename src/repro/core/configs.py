"""Benchmark-scale configurations.

Full paper-scale projections are faithful but slow to *set up* (the
miniFE assembly at 100^3 or XSBench's 240 MB table take tens of
seconds per run even with kernels skipped).  The benchmark harness
therefore uses *reduced paper-scale* configurations: large enough to
saturate both simulated devices (so speedup ratios have converged) and
to preserve each app's transfer-to-compute ratio, but cheap enough
that every figure regenerates in seconds.

``repro --full`` switches to the exact Table I command-line sizes.
"""

from __future__ import annotations

from ..apps.comd import CoMDConfig
from ..apps.lulesh import LuleshConfig
from ..apps.minife import MiniFEConfig
from ..apps.readmem import ReadMemConfig
from ..apps.xsbench import XSBenchConfig


def bench_configs() -> dict[str, object]:
    """Reduced paper-scale configuration per application name."""
    return {
        "read-benchmark": ReadMemConfig(size=1 << 24),
        "LULESH": LuleshConfig(size=48, iterations=20),
        "CoMD": CoMDConfig(nx=24, ny=24, nz=24, steps=10),
        "XSBench": XSBenchConfig(n_nuclides=68, n_gridpoints=2000, n_lookups=2_000_000),
        "miniFE": MiniFEConfig(nx=48, ny=48, nz=48, cg_iterations=100),
    }


def sweep_configs() -> dict[str, object]:
    """Even smaller configurations for the 72-point frequency sweeps."""
    return {
        "read-benchmark": ReadMemConfig(size=1 << 22),
        "LULESH": LuleshConfig(size=32, iterations=3),
        "CoMD": CoMDConfig(nx=12, ny=12, nz=12, steps=2),
        "XSBench": XSBenchConfig(n_nuclides=34, n_gridpoints=1000, n_lookups=500_000),
        "miniFE": MiniFEConfig(nx=32, ny=32, nz=32, cg_iterations=20),
    }
