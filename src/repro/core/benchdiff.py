"""SLO sentinel: compare fresh benchmark JSON against committed baselines.

The repo commits three performance contracts — ``BENCH_cache.json``
(vectorized replay speedups), ``BENCH_study.json`` (columnar
whole-study pricing) and ``BENCH_serve.json`` (serving throughput and
latency).  ``repro benchdiff`` regenerates candidates (in CI, the smoke
steps already do) and holds them against the committed numbers with
per-metric tolerance bands, exiting non-zero on regression, so a perf
or correctness slide fails the build instead of silently aging the
baselines.

Bands are *directional*: a speedup may only fall so far below the
baseline, a p99 may only rise so far above it, a correctness bit
(``identical``, ``errors == 0``) may not move at all.  Candidates may
legitimately be much *better* (CI runners are slower and noisier than
the machines baselines were recorded on), so the bands are wide and
one-sided; ``--tolerance-scale`` widens them further for hostile
environments without editing the table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .report import format_table

#: Band semantics: ``higher`` — candidate >= baseline * (1 - tol);
#: ``lower`` — candidate <= baseline * (1 + tol); ``equal`` — exact
#: match; ``zero`` — candidate must be exactly 0.
DIRECTIONS = ("higher", "lower", "equal", "zero")

#: Scaled ratio tolerances cap here: a candidate worse than 20x off
#: baseline is a regression no runner-noise argument can excuse.
_MAX_RATIO_TOL = 0.95


@dataclass(frozen=True)
class MetricCheck:
    """One guarded metric: a dot path into the bench JSON plus a band."""

    path: str
    direction: str
    tolerance: float = 0.0

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"unknown direction {self.direction!r}: expected one of {DIRECTIONS}"
            )


#: The committed contracts, keyed by bench file basename.
BENCH_CHECKS: dict[str, tuple[MetricCheck, ...]] = {
    "BENCH_cache.json": (
        MetricCheck("replay_totals.speedup", "higher", 0.5),
        MetricCheck("characterization.speedup", "higher", 0.5),
        MetricCheck("characterization.trace_memo_hits", "higher", 0.5),
    ),
    "BENCH_study.json": (
        MetricCheck("identical", "equal"),
        MetricCheck("cells", "equal"),
        MetricCheck("speedup", "higher", 0.9),
        # The cross-vendor energy row: simulated joules are a pure
        # function of the model, so the totals are exact contracts —
        # any drift is a calibration change, not runner noise.
        MetricCheck("energy.identical", "equal"),
        MetricCheck("energy.total_joules", "equal"),
        MetricCheck("energy.total_edp", "equal"),
    ),
    "BENCH_serve.json": (
        MetricCheck("errors", "zero"),
        MetricCheck("throughput_rps", "higher", 0.8),
        MetricCheck("latency_ms.p50", "lower", 4.0),
        MetricCheck("latency_ms.p99", "lower", 4.0),
        # The sharded-tier rows: aggregate bulk pricing throughput
        # (cells/s over every shard) and the restart drill — a bounced
        # shard must answer the whole warm mix without recomputing.
        MetricCheck("sharded.errors", "zero"),
        MetricCheck("sharded.cells_rps", "higher", 0.8),
        MetricCheck("restart.cold_misses", "zero"),
        # The chaos drill row: correctness and convergence are binary
        # contracts (no tolerance arguments apply); the storm's error
        # *rate* is bounded by the drill itself, not compared against
        # the baseline, because the number of faults landed is a
        # function of runner speed.
        MetricCheck("chaos.mismatches", "zero"),
        MetricCheck("chaos.final_mismatches", "zero"),
        MetricCheck("chaos.cold_misses", "zero"),
        MetricCheck("chaos.converged", "equal"),
    ),
}


@dataclass(frozen=True)
class BenchDelta:
    """One metric's verdict."""

    file: str
    metric: str
    baseline: object
    candidate: object
    bound: str
    ok: bool

    def row(self) -> list[str]:
        return [
            self.file,
            self.metric,
            _fmt(self.baseline),
            _fmt(self.candidate),
            self.bound,
            "ok" if self.ok else "REGRESSION",
        ]


def _fmt(value: object) -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    return f"{value:.4g}"


def lookup(doc: object, path: str) -> object:
    """Resolve a dot path (``latency_ms.p99``) into a JSON document."""
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(path)
        node = node[part]
    return node


def check_metric(
    check: MetricCheck,
    baseline_doc: object,
    candidate_doc: object,
    file: str,
    scale: float = 1.0,
) -> BenchDelta:
    """Hold one candidate metric against its baseline band."""
    try:
        baseline = lookup(baseline_doc, check.path)
    except KeyError:
        return BenchDelta(file, check.path, "<missing>", "-", "baseline has no such metric", False)
    try:
        candidate = lookup(candidate_doc, check.path)
    except KeyError:
        return BenchDelta(file, check.path, baseline, "<missing>", "metric must exist", False)

    if check.direction == "equal":
        return BenchDelta(
            file, check.path, baseline, candidate, f"== {_fmt(baseline)}",
            candidate == baseline,
        )
    if check.direction == "zero":
        return BenchDelta(file, check.path, baseline, candidate, "== 0", candidate == 0)

    if not isinstance(candidate, (int, float)) or isinstance(candidate, bool):
        return BenchDelta(
            file, check.path, baseline, candidate, "numeric", False
        )
    tol = min(check.tolerance * scale, _MAX_RATIO_TOL) \
        if check.direction == "higher" else check.tolerance * scale
    if check.direction == "higher":
        bound = float(baseline) * (1.0 - tol)
        return BenchDelta(
            file, check.path, baseline, candidate, f">= {_fmt(bound)}",
            float(candidate) >= bound,
        )
    bound = float(baseline) * (1.0 + tol)
    return BenchDelta(
        file, check.path, baseline, candidate, f"<= {_fmt(bound)}",
        float(candidate) <= bound,
    )


def compare_file(
    candidate_path: Path,
    baseline_dir: Path,
    scale: float = 1.0,
) -> list[BenchDelta]:
    """All checks for one candidate bench file.

    The baseline is the committed file of the same basename under
    ``baseline_dir``; an unknown basename or a missing baseline is
    itself a failing delta (the sentinel must not silently skip).
    """
    name = candidate_path.name
    checks = BENCH_CHECKS.get(name)
    if checks is None:
        known = ", ".join(sorted(BENCH_CHECKS))
        return [BenchDelta(name, "-", "-", "-", f"known bench files: {known}", False)]
    baseline_path = baseline_dir / name
    if not baseline_path.exists():
        return [BenchDelta(name, "-", f"<no {baseline_path}>", "-", "baseline file must exist", False)]
    baseline_doc = json.loads(baseline_path.read_text())
    candidate_doc = json.loads(candidate_path.read_text())
    return [
        check_metric(check, baseline_doc, candidate_doc, name, scale)
        for check in checks
    ]


def compare(
    candidates: list[Path],
    baseline_dir: Path,
    scale: float = 1.0,
) -> list[BenchDelta]:
    deltas: list[BenchDelta] = []
    for candidate in candidates:
        deltas.extend(compare_file(candidate, baseline_dir, scale))
    return deltas


def render(deltas: list[BenchDelta], scale: float = 1.0) -> str:
    table = format_table(
        ["file", "metric", "baseline", "candidate", "band", "verdict"],
        [delta.row() for delta in deltas],
        title=f"benchdiff (tolerance scale {scale:g})",
    )
    regressions = [d for d in deltas if not d.ok]
    verdict = (
        f"{len(regressions)} regression(s) out of {len(deltas)} checks"
        if regressions
        else f"all {len(deltas)} checks within tolerance"
    )
    return table + "\n" + verdict
