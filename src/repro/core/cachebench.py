"""Tracked perf baseline for the cache-replay path (``BENCH_cache.json``).

Two measurements, both over the real Table I dominant-kernel patterns
at the paper's problem sizes:

* **Engine benchmark** — each pattern's trace replayed once through the
  scalar reference engine and once through the vectorized batch engine,
  memo caches disabled, stats asserted bit-identical.  This isolates
  the simulator speedup itself.
* **Characterization protocol** — the miss-rate measurement repeated
  ``reps`` times, comparing the pre-optimization path (scalar engine,
  no trace memo — what ``replay_pattern`` did before the vectorized
  engine landed) against the shipped default (vector engine plus
  :data:`~repro.engine.memo.TRACE_CACHE`): rep 1 simulates, reps 2+ are
  served from the memo, which is how sweeps and repeated table
  regenerations actually hit this code.

The JSON this module writes is committed as the repo's perf baseline;
CI regenerates it as an artifact so drift is observable run to run.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass
from typing import Sequence

import numpy as np

from ..apps.base import ProxyApp
from ..engine.memo import TRACE_CACHE, cache_disabled
from ..engine.trace import (
    DEFAULT_TRACE_BUDGET,
    generate_trace,
    make_replay_cache,
    replay_pattern,
    scaled_cache_spec,
)
from ..hardware.specs import R9_280X
from .characterize import dominant_spec
from .report import format_table


@dataclass(frozen=True)
class PatternBench:
    """Scalar-vs-vector engine timing of one app's dominant pattern."""

    app: str
    kind: str
    accesses: int
    sets: int
    ways: int
    scalar_seconds: float
    vector_seconds: float
    speedup: float
    miss_rate: float


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def bench_pattern(app: ProxyApp, repeats: int, budget: int) -> PatternBench:
    """Time both engines on ``app``'s dominant pattern, memo disabled.

    Each timed run is the full characterization replay (warm-up pass
    plus measured pass) on a fresh cache.  The engines' stats are
    asserted equal — the bit-identity contract, enforced on every
    benchmark run.
    """
    spec = dominant_spec(app, app.paper_config())
    scaled_spec, _scale = scaled_cache_spec(spec.access, R9_280X.l2_cache)
    trace = generate_trace(spec.access, budget=budget)
    warm = trace[: len(trace) // 4]
    results: dict[str, object] = {}

    def replay(engine: str) -> None:
        cache = make_replay_cache(scaled_spec, engine)
        cache.replay(warm)
        results[engine] = cache.replay(trace)

    with cache_disabled():
        scalar_s = _best_of(repeats, lambda: replay("scalar"))
        vector_s = _best_of(repeats, lambda: replay("vector"))
    if results["scalar"] != results["vector"]:
        raise AssertionError(
            f"{app.name}: engines disagree: {results['scalar']} != {results['vector']}"
        )
    stats = results["vector"]
    return PatternBench(
        app=app.name,
        kind=spec.access.kind.value,
        accesses=int(len(trace)),
        sets=scaled_spec.sets,
        ways=scaled_spec.ways,
        scalar_seconds=scalar_s,
        vector_seconds=vector_s,
        speedup=scalar_s / vector_s if vector_s else float("inf"),
        miss_rate=stats.miss_rate,  # type: ignore[union-attr]
    )


def _characterization_protocol(
    apps: Sequence[ProxyApp], reps: int, budget: int
) -> dict:
    """Repeated miss-rate measurement: pre-PR path vs shipped path."""
    patterns = [dominant_spec(app, app.paper_config()).access for app in apps]

    # Pre-optimization path: scalar engine, every rep recomputes.
    with cache_disabled():
        started = time.perf_counter()
        for _ in range(reps):
            scalar_rates = [
                replay_pattern(p, R9_280X.l2_cache, budget=budget, engine="scalar").miss_rate
                for p in patterns
            ]
        scalar_s = time.perf_counter() - started

    # Shipped default: vector engine behind the trace memo cache.
    TRACE_CACHE.clear()
    before = TRACE_CACHE.snapshot()
    started = time.perf_counter()
    for _ in range(reps):
        vector_rates = [
            replay_pattern(p, R9_280X.l2_cache, budget=budget).miss_rate
            for p in patterns
        ]
    vector_s = time.perf_counter() - started
    delta = TRACE_CACHE.snapshot().since(before)

    if scalar_rates != vector_rates:
        raise AssertionError(
            f"paths disagree: {scalar_rates} != {vector_rates}"
        )
    return {
        "reps": reps,
        "patterns": len(patterns),
        "scalar_path_seconds": scalar_s,
        "vector_memo_path_seconds": vector_s,
        "speedup": scalar_s / vector_s if vector_s else float("inf"),
        "trace_memo_hits": delta.hits,
        "trace_memo_misses": delta.misses,
        "miss_rates": dict(zip([app.name for app in apps], vector_rates)),
    }


def run_cache_bench(
    apps: Sequence[ProxyApp] | None = None,
    repeats: int = 3,
    reps: int = 5,
    budget: int = DEFAULT_TRACE_BUDGET,
) -> dict:
    """The full cache-replay benchmark, as a JSON-serializable dict."""
    if apps is None:
        from ..apps import ALL_APPS

        apps = ALL_APPS
    rows = [bench_pattern(app, repeats, budget) for app in apps]
    scalar_total = sum(r.scalar_seconds for r in rows)
    vector_total = sum(r.vector_seconds for r in rows)
    return {
        "budget": budget,
        "engine_repeats": repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "patterns": [asdict(r) for r in rows],
        "replay_totals": {
            "scalar_seconds": scalar_total,
            "vector_seconds": vector_total,
            "speedup": scalar_total / vector_total if vector_total else float("inf"),
        },
        "characterization": _characterization_protocol(apps, reps, budget),
    }


def render_cache_bench(result: dict) -> str:
    """Human-readable ratio table of a :func:`run_cache_bench` result."""
    rows = [
        [
            r["app"],
            r["kind"],
            str(r["accesses"]),
            f"{r['scalar_seconds'] * 1e3:8.1f} ms",
            f"{r['vector_seconds'] * 1e3:8.1f} ms",
            f"{r['speedup']:5.1f}x",
            f"{r['miss_rate']:.1%}",
        ]
        for r in result["patterns"]
    ]
    totals = result["replay_totals"]
    rows.append(
        [
            "TOTAL",
            "",
            "",
            f"{totals['scalar_seconds'] * 1e3:8.1f} ms",
            f"{totals['vector_seconds'] * 1e3:8.1f} ms",
            f"{totals['speedup']:5.1f}x",
            "",
        ]
    )
    table = format_table(
        ["App", "Pattern", "Accesses", "Scalar", "Vector", "Speedup", "Miss rate"],
        rows,
        title="Cache-replay engine benchmark (memo disabled, bit-identical stats)",
    )
    c = result["characterization"]
    lines = [
        table,
        "",
        f"Repeated characterization ({c['reps']} reps x {c['patterns']} patterns):",
        f"  pre-optimization path (scalar engine, no memo): "
        f"{c['scalar_path_seconds'] * 1e3:.1f} ms",
        f"  shipped path (vector engine + trace memo):      "
        f"{c['vector_memo_path_seconds'] * 1e3:.1f} ms",
        f"  speedup: {c['speedup']:.1f}x  "
        f"(trace memo: {c['trace_memo_hits']} hits / {c['trace_memo_misses']} misses)",
    ]
    return "\n".join(lines)


def write_cache_bench(result: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=False)
        fh.write("\n")
