"""Paper-style renderers: print the tables and figure series as text.

Each renderer emits the same rows/columns the paper's table or figure
reports, so the benchmark harness and CLI can show paper-vs-measured
side by side.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..hardware.specs import Precision, table2_rows
from ..models.registry import table3_rows
from .characterize import PAPER_TABLE1, AppCharacterization
from .features import FEATURE_COLUMNS, FEATURE_ROWS, feature_matrix
from .productivity import ProductivityResult
from .study import GPU_MODELS, StudyResult
from .sweep import SweepResult


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Plain fixed-width table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1(measured: Iterable[AppCharacterization]) -> str:
    """Table I: characteristics, paper vs measured."""
    rows = []
    for m in measured:
        paper = PAPER_TABLE1.get(m.app, {})
        rows.append(
            [
                m.app,
                f"{m.llc_miss_rate:.0%} (paper {paper.get('miss_rate', float('nan')):.0%})"
                if paper else f"{m.llc_miss_rate:.0%}",
                f"{m.ipc:.2f} (paper {paper.get('ipc', float('nan')):.2f})"
                if paper else f"{m.ipc:.2f}",
                str(m.n_kernels),
                f"{m.boundedness} (paper {paper.get('boundedness', '?')})"
                if paper else m.boundedness,
            ]
        )
    return format_table(
        ["Application", "LLC Miss Rate", "IPC", "Kernels", "Boundedness"],
        rows,
        title="Table I: Characteristics of Proxy Applications",
    )


def render_table2() -> str:
    """Table II: hardware specifications."""
    rows_data = table2_rows()
    keys = list(rows_data[0].keys())
    rows = [[row[k] for k in keys] for row in rows_data]
    # Transpose: spec name in the first column, one column per device.
    transposed = [[k] + [row[keys.index(k)] for row in rows] for k in keys]
    return format_table(
        ["Specification", "dGPU", "APU"],
        transposed,
        title="Table II: Hardware Specification of Accelerators",
    )


def render_table3() -> str:
    """Table III: compilers used for programming models."""
    rows = [[e.model, e.compiler] for e in table3_rows()]
    return format_table(
        ["Programming Model", "Compiler"],
        rows,
        title="Table III: Compilers Used for Programming Models",
    )


def render_table4(measured: Mapping[str, Mapping[str, int]], paper: Mapping[str, Mapping[str, int]]) -> str:
    """Table IV: lines added per port, measured vs paper."""
    models = ["OpenMP", "OpenCL", "C++ AMP", "OpenACC"]
    rows = []
    for app, counts in measured.items():
        paper_counts = paper.get(app, {})
        rows.append(
            [app]
            + [
                f"{counts[m]} (paper {paper_counts.get(m, '?')})"
                for m in models
            ]
        )
    return format_table(
        ["Application"] + models,
        rows,
        title="Table IV: Source Lines of Code Changed From Serial",
    )


def render_figure7(sweep: SweepResult) -> str:
    """One subplot of Figure 7: normalized perf vs core clock, one row
    per memory clock."""
    memory_clocks = sorted({p.memory_mhz for p in sweep.points})
    core_clocks = sorted({p.core_mhz for p in sweep.points})
    headers = ["mem\\core"] + [f"{c:.0f}" for c in core_clocks]
    rows = []
    for memory in memory_clocks:
        # Index by clock pair so a quarantined grid point renders as a
        # hole, not a column shift.
        series = {p.core_mhz: p for p in sweep.series(memory)}
        rows.append(
            [f"{memory:.0f}"]
            + [
                f"{series[c].normalized_performance:.2f}" if c in series else "-"
                for c in core_clocks
            ]
        )
    return format_table(headers, rows, title=f"Figure 7 ({sweep.app}): normalized performance")


def render_speedups(study: StudyResult, apps: Iterable[str], apu: bool, title: str) -> str:
    """One of Figures 8/9: speedup bars for every app and model.

    Cells whose runs were quarantined (see ``StudyResult.failures``)
    render as ``-`` rather than aborting the whole table.
    """
    rows = []
    for app in apps:
        for precision in (Precision.SINGLE, Precision.DOUBLE):
            cells = [app, precision.value]
            for model in GPU_MODELS:
                try:
                    entry = study.get(app, model, apu, precision)
                except KeyError:
                    cells.append("-")
                    continue
                value = entry.kernel_speedup if app == "read-benchmark" else entry.speedup
                cells.append(f"{value:.2f}x")
            rows.append(cells)
    return format_table(["Application", "Precision"] + list(GPU_MODELS), rows, title=title)


def render_energy(
    study: StudyResult,
    apps: Iterable[str],
    models: Iterable[str],
    platform: str,
    title: str,
) -> str:
    """The energy view of one platform's study column: speedup over the
    OpenMP baseline plus whole-run joules and energy-delay product —
    the study the paper couldn't run (its Table II lists TDPs, but no
    power measurements).  Quarantined cells render as ``-``.
    """
    rows = []
    for app in apps:
        for precision in (Precision.SINGLE, Precision.DOUBLE):
            for model in models:
                try:
                    entry = study.get(app, model, precision=precision, platform=platform)
                except KeyError:
                    rows.append([app, precision.value, model, "-", "-", "-"])
                    continue
                rows.append([
                    app,
                    precision.value,
                    model,
                    f"{entry.speedup:.2f}x",
                    f"{entry.joules:.4g} J",
                    f"{entry.edp:.4g} Js",
                ])
    return format_table(
        ["Application", "Precision", "Model", "Speedup", "Energy", "EDP"],
        rows,
        title=title,
    )


def render_figure10(result: ProductivityResult, apps: Iterable[str]) -> str:
    """Figure 10: productivity (Eq. 1) per app plus harmonic means."""
    rows = []
    for app in apps:
        cells = [app]
        for model in GPU_MODELS:
            cells.append(f"{result.get(app, model).productivity:.2f}")
        rows.append(cells)
    means = result.harmonic_means()
    rows.append(["Har. Mean"] + [f"{means[m]:.2f}" for m in GPU_MODELS])
    platform = "APU" if result.apu else "dGPU"
    return format_table(
        ["Application"] + list(GPU_MODELS),
        rows,
        title=f"Figure 10 ({platform}): productivity (Eq. 1, double precision)",
    )


def render_figure11() -> str:
    """Figure 11: the optimization-feature matrix."""
    matrix = feature_matrix()
    headers = ["Model"] + [name for name, _ in FEATURE_COLUMNS]
    rows = []
    for model in FEATURE_ROWS:
        rows.append([model] + ["yes" if matrix[model][name] else "no" for name, _ in FEATURE_COLUMNS])
    return format_table(headers, rows, title="Figure 11: Optimizations allowed by each model")
