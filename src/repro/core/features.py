"""Optimization-feature matrix (Figure 11).

"Figure 11 illustrates the features available in the programming
models to assist in tuning application-performance either by manual
intervention or by providing hints to the compiler."
"""

from __future__ import annotations

from ..models.base import Capability
from ..models.registry import PROFILES

#: Figure 11's columns, in order, and the capability each tests.
FEATURE_COLUMNS: tuple[tuple[str, Capability], ...] = (
    ("Vectorization", Capability.VECTORIZE),
    ("Use of Local Data Store (LDS)", Capability.LDS),
    ("Fine-grained Synchronization", Capability.FINE_SYNC),
    ("Explicit Loop Unrolling", Capability.UNROLL),
    ("Reducing Code Motion", Capability.CODE_MOTION),
)

#: Figure 11's rows, in order.
FEATURE_ROWS = ("OpenCL", "OpenACC", "C++ AMP")

#: The paper's matrix, verbatim, for verification.
PAPER_FIGURE11: dict[str, dict[str, bool]] = {
    "OpenCL": {name: True for name, _ in FEATURE_COLUMNS},
    "OpenACC": {
        "Vectorization": True,
        "Use of Local Data Store (LDS)": False,
        "Fine-grained Synchronization": False,
        "Explicit Loop Unrolling": False,
        "Reducing Code Motion": False,
    },
    "C++ AMP": {
        "Vectorization": True,
        "Use of Local Data Store (LDS)": True,
        "Fine-grained Synchronization": True,
        "Explicit Loop Unrolling": False,
        "Reducing Code Motion": False,
    },
}


def feature_matrix(models: tuple[str, ...] = FEATURE_ROWS) -> dict[str, dict[str, bool]]:
    """Figure 11, derived from the registered compiler profiles."""
    matrix: dict[str, dict[str, bool]] = {}
    for model in models:
        profile = PROFILES[model]
        matrix[model] = {
            name: capability in profile.capabilities
            for name, capability in FEATURE_COLUMNS
        }
    return matrix
