"""The comparison study: apps x models x platforms x precisions.

This is the paper's primary experiment (Figures 8 and 9): run every
port of every proxy application on both platforms in both precisions
and report speedups over the 4-core OpenMP baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from pathlib import Path

from ..apps.base import ProxyApp, RunResult
from ..exec.checkpoint import CheckpointJournal
from ..exec.executor import ExecStats, execute_with_engine
from ..exec.faults import FaultPlan, RunError
from ..exec.plan import APU, DGPU, study_runs
from ..exec.retry import RetryPolicy
from ..hardware.device import make_platform
from ..hardware.specs import Precision
from ..models.base import ExecutionContext
from ..obs.export import Timeline
from .metrics import speedup

#: The three GPU models of the comparison, in the paper's order.
GPU_MODELS = ("OpenCL", "C++ AMP", "OpenACC")
BASELINE_MODEL = "OpenMP"


@dataclass(frozen=True)
class StudyEntry:
    """One measured point of the study."""

    app: str
    model: str
    platform: str
    apu: bool
    precision: Precision
    seconds: float
    kernel_seconds: float
    baseline_seconds: float
    #: Plan selector of the platform ("apu"/"dgpu"/"v100"); "" only in
    #: hand-built legacy entries.
    platform_key: str = ""
    #: Whole-run energy in joules (``repro.engine.energy``).
    joules: float = 0.0

    @property
    def speedup(self) -> float:
        """Speedup over the 4-core OpenMP baseline (the figures' y-axis)."""
        return speedup(self.baseline_seconds, self.seconds)

    @property
    def kernel_speedup(self) -> float:
        """Kernel-time-only speedup (used for read-benchmark, which the
        paper reports with "data-transfer times ... left out")."""
        return speedup(self.baseline_seconds, self.kernel_seconds)

    @property
    def edp(self) -> float:
        """Energy-delay product in joule-seconds."""
        return self.joules * self.seconds


@dataclass
class StudyResult:
    """All entries of one study, with lookup helpers."""

    entries: list[StudyEntry] = field(default_factory=list)
    #: Executor observability (wall time, dedup, cache hits) for the
    #: run that produced the entries; ``None`` for hand-built results.
    stats: ExecStats | None = None
    #: Merged span/metric timeline of the run that produced the
    #: entries; ``None`` unless telemetry was requested.  Purely
    #: observational — goldens and speedup tables never read it, and
    #: entries are bit-identical with or without it.
    telemetry: Timeline | None = None
    #: Runs that exhausted their retry budget.  A cell whose baseline
    #: or model run failed is simply absent from ``entries``; the
    #: failures say which and why.
    failures: list[RunError] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Whether every requested run produced an entry."""
        return not self.failures

    def get(
        self,
        app: str,
        model: str,
        apu: bool | None = None,
        precision: Precision | None = None,
        platform: str | None = None,
    ) -> StudyEntry:
        """Look one entry up by platform selector or legacy ``apu`` bool.

        ``platform`` (a plan selector: "apu"/"dgpu"/"v100") is the
        general form; ``apu`` remains for two-platform callers.
        """
        for entry in self.entries:
            if entry.app != app or entry.model != model:
                continue
            if precision is not None and entry.precision != precision:
                continue
            if platform is not None:
                if entry.platform_key != platform:
                    continue
            elif apu is not None and entry.apu != apu:
                continue
            return entry
        where = platform if platform is not None else ("APU" if apu else "dGPU")
        raise KeyError(f"no entry for {app}/{model}/{where}/{precision and precision.value}")

    def speedups(self, app: str, apu: bool, precision: Precision) -> dict[str, float]:
        """Model -> speedup for one app/platform/precision (one subplot
        of Figure 8 or 9)."""
        return {
            model: self.get(app, model, apu, precision).speedup for model in GPU_MODELS
        }


def run_port(
    app: ProxyApp,
    model: str,
    apu: bool,
    precision: Precision,
    config: object,
    projection: bool,
) -> RunResult:
    """Run one port on a fresh platform/context."""
    ctx = ExecutionContext(
        platform=make_platform(apu=apu),
        precision=precision,
        execute_kernels=not projection,
    )
    return app.ports[model](ctx, config)


def run_study(
    apps: tuple[ProxyApp, ...],
    apu_values: tuple[bool, ...] = (True, False),
    precisions: tuple[Precision, ...] = (Precision.SINGLE, Precision.DOUBLE),
    models: tuple[str, ...] = GPU_MODELS,
    platforms: tuple[str, ...] | None = None,
    paper_scale: bool = True,
    configs: dict[str, object] | None = None,
    max_workers: int = 1,
    use_cache: bool = True,
    telemetry: bool = False,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    checkpoint: str | Path | CheckpointJournal | None = None,
    engine: str = "scalar",
) -> StudyResult:
    """Run the full comparison.

    ``paper_scale=True`` uses each app's paper-sized configuration in
    projection mode (launch/transfer schedules priced, numerics
    skipped); ``paper_scale=False`` runs the CI-sized configurations
    functionally.  ``configs`` overrides the configuration per app name.

    The matrix is flattened into independent run descriptors and
    executed by :mod:`repro.exec`: ``max_workers`` shards them over a
    process pool (1 = deterministic in-process execution), and
    ``use_cache`` backs kernel pricing with the content-addressed memo
    cache.  Entries are bit-identical for every worker count —
    ``telemetry`` records spans/metrics on the side (``.telemetry``)
    without perturbing them.

    ``policy``/``faults``/``checkpoint`` configure the fault-tolerance
    layer (retries and watchdogs, deterministic fault injection, and
    the resume journal); see :func:`repro.exec.execute`.  Runs that
    exhaust their retries are quarantined: the study returns its
    surviving entries with the losses in ``.failures`` instead of
    raising.

    ``engine`` selects how cells are priced: ``"scalar"`` simulates
    one port per cell (the differential oracle), ``"vector"`` lowers
    the matrix into a spec lattice and prices all cells columnar
    (:mod:`repro.engine.study_vec`).  Entries are bit-identical either
    way.

    ``platforms`` names plan selectors directly ("apu"/"dgpu"/"v100") —
    the general, cross-vendor form; when given it supersedes the legacy
    ``apu_values`` pair.
    """
    if platforms is None:
        platforms = tuple(APU if apu else DGPU for apu in apu_values)
    resolved: dict[str, object] = {}
    for app in apps:
        if configs and app.name in configs:
            resolved[app.name] = configs[app.name]
        else:
            resolved[app.name] = app.paper_config() if paper_scale else app.default_config()

    runs = study_runs(
        app_names=[app.name for app in apps],
        configs=resolved,
        apu_values=None,
        precisions=precisions,
        models=models,
        baseline=BASELINE_MODEL,
        projection=paper_scale,
        platforms=platforms,
    )
    outcomes, stats = execute_with_engine(
        engine,
        runs,
        max_workers=max_workers,
        use_cache=use_cache,
        telemetry=telemetry,
        policy=policy,
        faults=faults,
        checkpoint=checkpoint,
    )

    # Reassemble in the plan's canonical order: baseline first, then
    # one outcome per model for each (app, platform, precision) cell.
    # Quarantined runs come back as ``None``: a lost model run drops
    # that one entry, a lost baseline drops its whole cell (there is
    # nothing to normalize against).
    result = StudyResult(stats=stats, telemetry=stats.timeline, failures=list(stats.failures))
    cursor = iter(outcomes)
    for app in apps:
        for platform in platforms:
            for precision in precisions:
                baseline_outcome = next(cursor)
                model_outcomes = [next(cursor) for _ in models]
                if baseline_outcome is None:
                    continue
                baseline = baseline_outcome.result
                for model, outcome in zip(models, model_outcomes):
                    if outcome is None:
                        continue
                    run = outcome.result
                    result.entries.append(
                        StudyEntry(
                            app=app.name,
                            model=model,
                            platform=run.platform,
                            apu=platform == APU,
                            precision=precision,
                            seconds=run.seconds,
                            kernel_seconds=run.kernel_seconds,
                            baseline_seconds=baseline.seconds,
                            platform_key=platform,
                            joules=getattr(run, "joules", 0.0),
                        )
                    )
    return result
