"""Metrics shared by the study framework."""

from __future__ import annotations

import math
from typing import Iterable


def speedup(baseline_seconds: float, seconds: float) -> float:
    """Speedup of a run over the baseline (>1 means faster)."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    if baseline_seconds <= 0:
        raise ValueError("baseline_seconds must be positive")
    return baseline_seconds / seconds


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean, as used for Figure 10's "Har. Mean" bars."""
    values = list(values)
    if not values:
        raise ValueError("harmonic mean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (used in summary reporting)."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(values: list[float], reference: float) -> list[float]:
    """Normalize a series to a reference value (Figure 7's y-axis)."""
    if reference <= 0:
        raise ValueError("reference must be positive")
    return [v / reference for v in values]
