"""Productivity analysis (Equation 1 and Figure 10).

"productivity = (time_OMP / time_model) / (lines_model / lines_OMP)"

— speedup per unit of relative porting effort, the paper's "biggest
bang for buck" metric, computed for the double-precision runs on both
platforms, plus the harmonic mean across applications.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.base import ProxyApp
from ..hardware.specs import Precision
from ..sloc.report import measure_lines_added
from .metrics import harmonic_mean
from .study import GPU_MODELS, StudyResult


@dataclass(frozen=True)
class ProductivityEntry:
    """Productivity of one model on one app and platform (Eq. 1)."""

    app: str
    model: str
    apu: bool
    speedup: float
    lines_ratio: float  # lines_model / lines_OMP

    @property
    def productivity(self) -> float:
        return self.speedup / self.lines_ratio


@dataclass
class ProductivityResult:
    """All Figure 10 bars for one platform."""

    apu: bool
    entries: list[ProductivityEntry]

    def get(self, app: str, model: str) -> ProductivityEntry:
        for entry in self.entries:
            if entry.app == app and entry.model == model:
                return entry
        raise KeyError(f"no productivity entry for {app}/{model}")

    def harmonic_means(self) -> dict[str, float]:
        """Per-model harmonic mean across applications ("Har. Mean")."""
        means = {}
        for model in GPU_MODELS:
            values = [e.productivity for e in self.entries if e.model == model]
            means[model] = harmonic_mean(values)
        return means


def compute_productivity(
    study: StudyResult,
    apps: tuple[ProxyApp, ...],
    apu: bool,
    precision: Precision = Precision.DOUBLE,
) -> ProductivityResult:
    """Figure 10: Eq. 1 over the study's double-precision runs.

    The paper "chose double-precision because that is most relevant
    from a scientific application standpoint in HPC".
    """
    entries = []
    for app in apps:
        lines = measure_lines_added(app)
        for model in GPU_MODELS:
            entry = study.get(app.name, model, apu, precision)
            entries.append(
                ProductivityEntry(
                    app=app.name,
                    model=model,
                    apu=apu,
                    speedup=entry.speedup,
                    lines_ratio=lines[model] / lines["OpenMP"],
                )
            )
    return ProductivityResult(apu=apu, entries=entries)
