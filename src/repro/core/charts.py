"""ASCII bar charts — the paper's figures, in a terminal.

Figures 8-10 are grouped bar charts; these renderers draw them with
unicode blocks so `repro figure8` output *looks* like the paper's
subplots, not just a number table.
"""

from __future__ import annotations

from typing import Mapping

from ..hardware.specs import Precision
from .study import GPU_MODELS, StudyResult

BAR_WIDTH = 42
FULL = "█"
PARTIAL = ("", "▏", "▎", "▍", "▌", "▋", "▊", "▉")


def bar(value: float, maximum: float, width: int = BAR_WIDTH) -> str:
    """A unicode bar proportional to ``value / maximum``."""
    if maximum <= 0:
        raise ValueError("maximum must be positive")
    cells = max(0.0, value / maximum) * width
    whole = int(cells)
    fraction = int((cells - whole) * 8)
    text = FULL * whole + PARTIAL[fraction]
    return text[:width]


def bar_chart(values: Mapping[str, float], title: str = "", unit: str = "x") -> str:
    """A labelled horizontal bar chart of name -> value."""
    if not values:
        raise ValueError("nothing to chart")
    maximum = max(values.values())
    if maximum <= 0:
        raise ValueError("all values non-positive")
    label_width = max(len(name) for name in values)
    lines = [title] if title else []
    for name, value in values.items():
        lines.append(
            f"{name.ljust(label_width)}  {bar(value, maximum)} {value:.2f}{unit}"
        )
    return "\n".join(lines)


def speedup_chart(
    study: StudyResult,
    app: str,
    apu: bool,
    precision: Precision = Precision.SINGLE,
    kernel_only: bool | None = None,
) -> str:
    """One subplot of Figure 8/9 as a bar chart.

    ``kernel_only`` defaults to the paper's convention: kernel time for
    the read-memory benchmark, end-to-end for the proxy apps.
    """
    if kernel_only is None:
        kernel_only = app == "read-benchmark"
    values = {}
    for model in GPU_MODELS:
        entry = study.get(app, model, apu, precision)
        values[model] = entry.kernel_speedup if kernel_only else entry.speedup
    platform = "APU" if apu else "dGPU"
    title = f"{app} on the {platform} ({precision.value} precision), speedup vs 4-core OpenMP"
    return bar_chart(values, title=title)


def figure_chart(study: StudyResult, apps: tuple[str, ...], apu: bool) -> str:
    """A whole figure (8 or 9): one subplot per application."""
    blocks = []
    for app in apps:
        for precision in (Precision.SINGLE, Precision.DOUBLE):
            blocks.append(speedup_chart(study, app, apu, precision))
    return "\n\n".join(blocks)
