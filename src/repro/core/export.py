"""Result export: studies and sweeps as plain records, JSON or CSV.

Downstream analysis (plotting the figures, regression-tracking the
shapes) wants flat tables, not framework objects.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from ..exec.plan import platform_label
from .study import StudyEntry, StudyResult
from .sweep import SweepResult


def _entry_platform(entry: StudyEntry) -> str:
    """Display label of an entry's platform; legacy entries (no
    ``platform_key``) keep the two-platform APU/dGPU labels."""
    if entry.platform_key:
        return platform_label(entry.platform_key)
    return "APU" if entry.apu else "dGPU"


def study_records(study: StudyResult) -> list[dict[str, object]]:
    """One flat record per study entry (Figures 8/9's data points)."""
    records = []
    for entry in study.entries:
        records.append(
            {
                "app": entry.app,
                "model": entry.model,
                "platform": _entry_platform(entry),
                "precision": entry.precision.value,
                "seconds": entry.seconds,
                "kernel_seconds": entry.kernel_seconds,
                "baseline_seconds": entry.baseline_seconds,
                "speedup": entry.speedup,
                "kernel_speedup": entry.kernel_speedup,
                "joules": entry.joules,
                "edp": entry.edp,
            }
        )
    return records


def speedup_tables(study: StudyResult) -> dict[str, dict[str, dict[str, dict[str, float]]]]:
    """The Figure 8/9 speedup tables as a nested mapping.

    ``platform -> precision -> app -> model -> speedup`` — the exact
    numbers behind each bar of the figures, in a shape that diffs
    cleanly against committed golden snapshots.
    """
    tables: dict[str, dict[str, dict[str, dict[str, float]]]] = {}
    for entry in study.entries:
        platform = _entry_platform(entry)
        tables.setdefault(platform, {}).setdefault(entry.precision.value, {}).setdefault(
            entry.app, {}
        )[entry.model] = entry.speedup
    return tables


def sweep_records(sweep: SweepResult) -> list[dict[str, object]]:
    """One flat record per (core, memory) grid point (Figure 7)."""
    return [
        {
            "app": sweep.app,
            "core_mhz": point.core_mhz,
            "memory_mhz": point.memory_mhz,
            "seconds": point.seconds,
            "normalized_performance": point.normalized_performance,
        }
        for point in sorted(sweep.points, key=lambda p: (p.memory_mhz, p.core_mhz))
    ]


def write_json(records: Iterable[dict[str, object]], path: str | Path) -> Path:
    """Write records as a JSON array; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(list(records), indent=2) + "\n")
    return path


def write_csv(records: Iterable[dict[str, object]], path: str | Path) -> Path:
    """Write records as CSV (header from the first record)."""
    records = list(records)
    if not records:
        raise ValueError("no records to write")
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(records[0].keys()))
        writer.writeheader()
        writer.writerows(records)
    return path


def load_json(path: str | Path) -> list[dict[str, object]]:
    """Read records back (round-trip of :func:`write_json`)."""
    return json.loads(Path(path).read_text())
