"""The comparison-study framework — the paper's primary contribution
pipeline: run apps x models x platforms, characterize workloads,
compute productivity, and render every table and figure.
"""

from .ablation import (
    TransferDecomposition,
    decompose_transfers,
    lulesh_compiler_bug_ablation,
    tiling_ablation,
    without_capabilities,
)
from .breakdown import (
    KernelShare,
    PhaseShare,
    kernel_breakdown,
    kernel_shares,
    phase_breakdown,
    record_run,
    render_breakdown,
    render_phases,
)
from .charts import bar, bar_chart, figure_chart, speedup_chart
from .characterize import (
    DOMINANT_KERNEL,
    PAPER_TABLE1,
    AppCharacterization,
    characterize,
    dominant_spec,
    measure_ipc,
    measure_miss_rate,
)
from .configs import bench_configs, sweep_configs
from .export import (
    load_json,
    speedup_tables,
    study_records,
    sweep_records,
    write_csv,
    write_json,
)
from .features import FEATURE_COLUMNS, FEATURE_ROWS, PAPER_FIGURE11, feature_matrix
from .metrics import geometric_mean, harmonic_mean, normalize, speedup
from .productivity import ProductivityEntry, ProductivityResult, compute_productivity
from .report import (
    format_table,
    render_figure7,
    render_figure10,
    render_figure11,
    render_speedups,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from .study import (
    BASELINE_MODEL,
    GPU_MODELS,
    StudyEntry,
    StudyResult,
    run_port,
    run_study,
)
from .sweep import SweepPoint, SweepResult, run_sweep

__all__ = [
    "AppCharacterization",
    "BASELINE_MODEL",
    "DOMINANT_KERNEL",
    "FEATURE_COLUMNS",
    "FEATURE_ROWS",
    "GPU_MODELS",
    "KernelShare",
    "PAPER_FIGURE11",
    "PhaseShare",
    "PAPER_TABLE1",
    "ProductivityEntry",
    "ProductivityResult",
    "StudyEntry",
    "StudyResult",
    "SweepPoint",
    "SweepResult",
    "TransferDecomposition",
    "bar",
    "bar_chart",
    "bench_configs",
    "characterize",
    "compute_productivity",
    "decompose_transfers",
    "dominant_spec",
    "feature_matrix",
    "figure_chart",
    "format_table",
    "geometric_mean",
    "harmonic_mean",
    "kernel_breakdown",
    "kernel_shares",
    "load_json",
    "lulesh_compiler_bug_ablation",
    "measure_ipc",
    "measure_miss_rate",
    "normalize",
    "phase_breakdown",
    "record_run",
    "render_breakdown",
    "render_phases",
    "render_figure7",
    "render_figure10",
    "render_figure11",
    "render_speedups",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "run_port",
    "run_study",
    "run_sweep",
    "speedup",
    "speedup_chart",
    "speedup_tables",
    "study_records",
    "sweep_configs",
    "sweep_records",
    "tiling_ablation",
    "without_capabilities",
    "write_csv",
    "write_json",
]
