"""Analytic kernel timing model.

Prices a :class:`~repro.engine.kernel.LoweredKernel` on a device using
a roofline with occupancy-based latency hiding:

* **compute side** — the larger of FMA-throughput time (FLOPs against
  the device's peak at the run's precision) and instruction-issue time
  (dynamic instructions against the SIMD issue rate), both de-rated by
  the lowering's vector efficiency and residual divergence;
* **memory side** — DRAM traffic after cache/LDS filtering against the
  memory system's effective bandwidth (memory clock x row-buffer
  efficiency x the lowering's coalescing quality);
* the slower side wins; low occupancy exposes latency on both sides.

The same machinery prices the CPU baseline (OpenMP / serial), with CPU
autovectorization taking the role vector efficiency plays on the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.compute_unit import latency_hiding_factor, occupancy
from ..hardware.device import CPUDevice, GPUDevice
from ..hardware.specs import Precision
from .counters import KernelRecord
from .energy import clock_power_scale, kernel_joules
from .kernel import AccessKind, KernelSpec, LoweredKernel

#: Floor on any kernel execution: pipeline ramp, drain and bookkeeping.
GPU_KERNEL_FLOOR_S = 3e-6
CPU_LOOP_FLOOR_S = 1e-7

#: Fraction of peak a well-written CPU loop typically sustains (issue
#: limits, AGU pressure); matches measured FP efficiency of Steamroller.
CPU_ISSUE_EFFICIENCY = 0.7

#: Scattered-access latency model: a GPU memory request spends most of
#: its latency in *core-clocked* on-chip pipelines (L1/L2/interconnect)
#: plus a DRAM-clocked portion.  This is why latency-bound workloads
#: like XSBench scale with the core clock in Figure 7d while being
#: insensitive to memory bandwidth.
SCATTER_PIPELINE_CYCLES = 300.0  # on-chip cycles at the core clock
SCATTER_DRAM_LATENCY_S = 200e-9  # DRAM-side latency at the default clock

#: Memory-level parallelism per resident wavefront: a dependent binary
#: search keeps ~1 request in flight; independent neighbour gathers
#: keep several.
SCATTER_MLP = {
    AccessKind.BINARY_SEARCH: 1.0,
    AccessKind.NEIGHBOR_LIST: 4.0,
}

#: DDR3 miss latency seen by a Steamroller core.
CPU_MISS_LATENCY_S = 90e-9


@dataclass(frozen=True)
class KernelTiming:
    """Outcome of pricing one kernel launch on one device."""

    name: str
    seconds: float
    cycles: float
    instructions: float
    dram_bytes: float
    limited_by: str  # "compute" | "memory" | "floor"
    compute_seconds: float
    memory_seconds: float
    occupancy_waves: int
    #: Dynamic switching energy of the launch (``repro.engine.energy``).
    joules: float = 0.0

    def record(self, device: str) -> KernelRecord:
        return KernelRecord(
            name=self.name,
            seconds=self.seconds,
            cycles=self.cycles,
            instructions=self.instructions,
            dram_bytes=self.dram_bytes,
            limited_by=self.limited_by,
            device=device,
            joules=self.joules,
        )


def time_gpu_kernel(
    lowered: LoweredKernel,
    gpu: GPUDevice,
    precision: Precision,
) -> KernelTiming:
    """Price one lowered kernel launch on a GPU at its current clocks."""
    spec = lowered.spec

    occ = occupancy(
        gpu.spec,
        registers_per_thread=spec.registers_per_thread,
        lds_bytes_per_workgroup=spec.lds_bytes_per_workgroup if lowered.uses_lds else 0,
        workgroup_size=spec.workgroup_size,
        total_work_items=spec.work_items,
    )
    hiding = latency_hiding_factor(occ)
    useful_lanes = lowered.vector_efficiency * (1.0 - lowered.divergence)

    # --- compute side -------------------------------------------------
    flop_seconds = 0.0
    if spec.ops.flops > 0:
        flop_seconds = spec.ops.flops / (gpu.peak_flops(precision) * useful_lanes)
    lanes_per_cu = gpu.spec.simd_per_cu * gpu.spec.lanes_per_simd
    issue_rate = gpu.spec.compute_units * lanes_per_cu * gpu.core_clock.hz
    instructions = lowered.instructions
    if precision is Precision.DOUBLE:
        # GCN issues DP VALU ops at the device's DP rate (1/4 Tahiti,
        # 1/16 Kaveri), so the FP share of the instruction stream
        # occupies proportionally more issue slots.
        fp_fraction = min(0.9, spec.ops.flops / max(instructions, 1.0))
        instructions *= (1.0 - fp_fraction) + fp_fraction / gpu.spec.dp_rate_ratio
    issue_seconds = instructions / (issue_rate * useful_lanes)
    compute_seconds = max(flop_seconds, issue_seconds) / hiding

    # --- memory side ----------------------------------------------------
    dram_bytes = lowered.dram_traffic_bytes(gpu.spec.l2_cache.size_bytes)
    pattern_eff = spec.access.row_buffer_efficiency * lowered.memory_efficiency
    bandwidth = gpu.memory.effective_bandwidth(pattern_eff) * 1e9
    memory_seconds = dram_bytes / bandwidth / hiding if dram_bytes else 0.0

    # Scattered patterns are additionally latency-bound: requests per
    # line, against the in-flight capacity the resident wavefronts
    # sustain.  Poorly generated code (low memory efficiency) issues
    # proportionally more requests.
    mlp = SCATTER_MLP.get(spec.access.kind)
    if mlp is not None and dram_bytes:
        line = gpu.spec.l2_cache.line_bytes
        requests = dram_bytes / line
        outstanding = gpu.spec.compute_units * occ.wavefronts_per_cu * mlp
        dram_latency = SCATTER_DRAM_LATENCY_S * (
            gpu.memory.clock.default_mhz / gpu.memory.clock.current_mhz
        )
        latency = SCATTER_PIPELINE_CYCLES / gpu.core_clock.hz + dram_latency
        latency_seconds = requests * latency / outstanding / lowered.memory_efficiency
        memory_seconds = max(memory_seconds, latency_seconds)

    seconds = max(compute_seconds, memory_seconds, GPU_KERNEL_FLOOR_S)
    if seconds == GPU_KERNEL_FLOOR_S:
        limited_by = "floor"
    elif compute_seconds >= memory_seconds:
        limited_by = "compute"
    else:
        limited_by = "memory"

    cycles = seconds * gpu.core_clock.hz
    return KernelTiming(
        name=spec.name,
        seconds=seconds,
        cycles=cycles,
        instructions=lowered.instructions,
        dram_bytes=dram_bytes,
        limited_by=limited_by,
        compute_seconds=compute_seconds,
        memory_seconds=memory_seconds,
        occupancy_waves=occ.wavefronts_per_cu,
        joules=kernel_joules(
            gpu.spec.power,
            seconds,
            compute_seconds,
            clock_power_scale(gpu.core_clock.current_mhz, gpu.core_clock.default_mhz),
        ),
    )


def cpu_vector_rate(cpu: CPUDevice, spec: KernelSpec, precision: Precision, threads: int) -> float:
    """Effective CPU FLOP/s for ``spec`` given its vectorizable fraction.

    Amdahl over SIMD lanes: the vectorizable fraction ``f`` of the work
    runs at peak, the rest runs one lane wide.
    """
    peak = cpu.peak_flops(precision, threads=threads) * CPU_ISSUE_EFFICIENCY
    width = cpu.spec.simd_width_sp if precision is Precision.SINGLE else cpu.spec.simd_width_sp // 2
    width = max(1, width)
    f = spec.cpu_simd_fraction
    return peak / (f + (1.0 - f) * width)


def cpu_stream_efficiency(threads: int) -> float:
    """Fraction of pin bandwidth ``threads`` CPU cores can draw.

    One core cannot fill the DDR3 bus, and even four Steamroller cores
    sustain only about a third of it: Kaveri's CPU cores reach DRAM
    through the coherent Onion path, which measures far below the
    GPU-side Garlic path in STREAM-type tests.
    """
    return min(0.32, 0.11 * threads)


def time_cpu_kernel(
    spec: KernelSpec,
    cpu: CPUDevice,
    precision: Precision,
    threads: int = 1,
) -> KernelTiming:
    """Price one parallel loop on the host CPU with ``threads`` cores."""
    if threads < 1:
        raise ValueError("threads must be >= 1")
    threads = min(threads, cpu.spec.cores)

    flop_seconds = 0.0
    if spec.ops.flops > 0:
        flop_seconds = spec.ops.flops / cpu_vector_rate(cpu, spec, precision, threads)
    # Non-FP instruction issue (address arithmetic, branches).
    scalar_rate = threads * cpu.spec.clock_mhz * 1e6 * 2.0  # ~2 IPC scalar issue
    issue_seconds = spec.ops.int_ops / scalar_rate if spec.ops.int_ops else 0.0
    compute_seconds = flop_seconds + issue_seconds

    host_memory = cpu.memory_system()
    traffic = spec.ops.total_bytes * max(
        spec.access.traffic_multiplier(cpu.spec.llc.size_bytes), 0.05
    )
    # CPU hardware prefetchers blunt the row-buffer penalty of
    # *predictable* access patterns (streams, stencils, banded SpMV
    # gathers) far more than the GPU's uncached path does; random
    # descents (binary search) and neighbour-list gathers stay exposed.
    prefetchable = spec.access.kind in (
        AccessKind.STREAMING, AccessKind.STENCIL, AccessKind.CSR_SPMV,
    )
    row_buffer = spec.access.row_buffer_efficiency
    if prefetchable:
        row_buffer = max(row_buffer, 0.8)
    pattern_eff = row_buffer * cpu_stream_efficiency(threads)
    bandwidth = host_memory.peak_bandwidth_at_clock() * pattern_eff * 1e9
    memory_seconds = traffic / bandwidth if traffic else 0.0

    # Scattered patterns are latency-bound on the CPU as well: the
    # out-of-order window sustains only a few misses per core, and a
    # dependent descent (binary search) keeps barely one in flight.
    mlp = SCATTER_MLP.get(spec.access.kind)
    if mlp is not None and traffic:
        requests = traffic / cpu.spec.llc.line_bytes
        per_core_mlp = 1.5 if spec.access.kind is AccessKind.BINARY_SEARCH else 6.0
        outstanding = threads * per_core_mlp
        latency_seconds = requests * CPU_MISS_LATENCY_S / outstanding
        memory_seconds = max(memory_seconds, latency_seconds)

    seconds = max(compute_seconds, memory_seconds, CPU_LOOP_FLOOR_S)
    if seconds == CPU_LOOP_FLOOR_S:
        limited_by = "floor"
    elif compute_seconds >= memory_seconds:
        limited_by = "compute"
    else:
        limited_by = "memory"

    cycles = seconds * cpu.spec.clock_mhz * 1e6
    return KernelTiming(
        name=spec.name,
        seconds=seconds,
        cycles=cycles,
        instructions=spec.instructions,
        dram_bytes=traffic,
        limited_by=limited_by,
        compute_seconds=compute_seconds,
        memory_seconds=memory_seconds,
        occupancy_waves=threads,
        joules=kernel_joules(
            cpu.spec.power,
            seconds,
            compute_seconds,
            share=threads / cpu.spec.cores,
        ),
    )
