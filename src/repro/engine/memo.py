"""Content-addressed memoization of kernel pricing.

One study prices the same kernels thousands of times: every solver
iteration relaunches the same :class:`~repro.engine.kernel.LoweredKernel`,
every model shares the OpenMP baseline loops, and the frequency sweep
re-prices each kernel per grid point.  The timing model and the
event-driven scheduler are pure functions of

    (lowered kernel, device state, precision[, threads])

so their results are cached here under a key built from the *content*
of those inputs (all field values, via the frozen dataclasses'
equality), never from object identity.  A cache hit is therefore
bit-identical to recomputation, and enabling the cache can never
change a study's numbers — only how often they are recomputed.

The cache is per-process.  The parallel executor
(:mod:`repro.exec`) gives each worker its own instance and aggregates
the hit/miss counters it reports.
"""

from __future__ import annotations

import copy
import functools
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, TypeVar

from ..hardware.device import CPUDevice, GPUDevice
from ..hardware.specs import Precision
from ..obs import spans as obs_spans
from ..obs import tracing as obs_tracing
from .kernel import KernelSpec, LoweredKernel
from .scheduler import ScheduleResult, simulate_kernel
from .timing import KernelTiming, time_cpu_kernel, time_gpu_kernel

T = TypeVar("T")


@dataclass(frozen=True)
class MemoStats:
    """Hit/miss counters of one cache at one point in time."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def since(self, earlier: "MemoStats") -> "MemoStats":
        """Counter delta between two snapshots."""
        return MemoStats(hits=self.hits - earlier.hits, misses=self.misses - earlier.misses)

    def __add__(self, other: "MemoStats") -> "MemoStats":
        return MemoStats(hits=self.hits + other.hits, misses=self.misses + other.misses)


class KernelMemoCache:
    """A content-addressed memo table with hit/miss accounting.

    ``layer`` names the cache in telemetry events ("kernel" pricing by
    default); subclasses reuse the machinery for other layers.
    """

    layer = "kernel"

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._values: dict[tuple, object] = {}
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._values)

    def lookup(self, key: tuple, compute: Callable[[], T]) -> T:
        """Return the cached value for ``key``, computing it on miss."""
        if not self.enabled:
            return compute()
        rec = obs_spans.active()
        try:
            value = self._values[key]
            self._hits += 1
            if rec is not None:
                rec.cache_event(self.layer, hit=True, kind=str(key[0]))
            return value  # type: ignore[return-value]
        except KeyError:
            self._misses += 1
            if rec is not None:
                rec.cache_event(self.layer, hit=False, kind=str(key[0]))
            value = compute()
            self._values[key] = value
            return value

    def contains(self, key: tuple) -> bool:
        """Uncounted membership probe: the follow-up :meth:`lookup`
        does the official hit/miss accounting.  Always False when the
        cache is disabled, so callers batch-compute everything."""
        return self.enabled and key in self._values

    def snapshot(self) -> MemoStats:
        return MemoStats(hits=self._hits, misses=self._misses)

    def clear(self) -> None:
        """Drop all entries and zero the counters."""
        self._values.clear()
        self._hits = 0
        self._misses = 0


#: The process-global cache backing every ``charge_*`` pricing call.
KERNEL_CACHE = KernelMemoCache()


class TraceMemoCache(KernelMemoCache):
    """Content-addressed memo for trace replays (Table I miss rates).

    Keys are ``(pattern kind, pattern, scaled cache spec, budget)`` —
    the full content of a characterization replay.  Trace generation is
    deterministic (stable per-pattern seeding) and both replay engines
    are pure functions of (trace, cache spec), so a hit is bit-identical
    to re-simulating: sweeps, per-device replays and repeated benchmark
    runs pay the ~200k-access simulation once per content.

    The stored value is the full :class:`~repro.engine.trace.TraceResult`;
    the engine that computed it is deliberately *not* part of the key —
    the vectorized and scalar engines are asserted bit-identical, so
    either may serve the other's lookups.
    """

    layer = "trace"


#: The process-global cache backing ``replay_pattern``.
TRACE_CACHE = TraceMemoCache()


class PlanMemoCache(KernelMemoCache):
    """Content-addressed memo for captured charge schedules.

    The columnar study engine (:mod:`repro.engine.study_vec`) replays a
    port once in *capture* mode to obtain its launch/transfer schedule
    — a pure function of the spec's clock-independent content
    (:meth:`repro.exec.plan.RunSpec.schedule_key`), since GPU clock
    overrides change prices but never which kernels launch.  The
    captured program is immutable and shared by every cell of a study
    that differs only in clocks, so one capture prices a whole
    frequency sweep.
    """

    layer = "plan"


#: The process-global cache backing schedule capture.
PLAN_CACHE = PlanMemoCache()


class SingleFlightCache(KernelMemoCache):
    """Thread-safe memo with single-flight coalescing of concurrent
    identical computations.

    The serving layer (:mod:`repro.serve`) memoizes whole run results
    here: many concurrent requests for the same
    :class:`~repro.exec.plan.RunSpec` must cost one engine run, not
    N.  :meth:`get_or_compute` elects the first caller of an absent
    key the *leader* — it computes while every concurrent duplicate
    blocks on an event and is tallied as *coalesced*; once the leader
    stores the value, followers return it without recomputing.  A
    leader that raises wakes its followers empty-handed and the next
    one retries, so failures are never cached.

    All bookkeeping happens under one lock, making the cache safe to
    share between an event loop and backend worker threads.  Engine
    results are deterministic pure functions of their spec, so a
    coalesced or cached answer is bit-identical to a fresh run.
    """

    layer = "result"

    def __init__(self, enabled: bool = True) -> None:
        super().__init__(enabled)
        self._lock = threading.Lock()
        self._pending: dict[tuple, threading.Event] = {}
        self._coalesced = 0

    @property
    def coalesced(self) -> int:
        """Calls served by waiting on an identical in-flight compute."""
        return self._coalesced

    def record_coalesced(self, count: int = 1) -> None:
        """Tally coalesces detected by a caller's own in-flight map.

        The async batcher deduplicates identical requests on the event
        loop before they ever reach a worker thread; those joins are
        the same single-flight event and count in the same metric.
        """
        with self._lock:
            self._coalesced += count

    def peek(self, key: tuple) -> tuple[bool, object]:
        """Non-computing lookup: ``(True, value)`` on a hit (counted),
        ``(False, None)`` otherwise (not counted as a miss — the
        caller's follow-up :meth:`get_or_compute` does that)."""
        if not self.enabled:
            return False, None
        with self._lock:
            if key in self._values:
                self._hits += 1
                return True, self._values[key]
        return False, None

    def seed(self, key: tuple, value: object) -> None:
        """Install a value computed elsewhere (a persistent store, a
        warm-up pass) without counting a hit or a miss.  Existing
        entries win: a seed never replaces a value concurrent callers
        may already have observed."""
        if not self.enabled:
            return
        with self._lock:
            self._values.setdefault(key, value)

    def discard(self, key: tuple) -> None:
        """Drop one cached value (no-op when absent).

        The serve tier's chaos harness corrupts a store entry and then
        evicts it here, forcing the next request back through the
        store's corrupt-tolerant read path; an in-flight compute for
        the key is unaffected and will re-populate the entry."""
        with self._lock:
            self._values.pop(key, None)

    def get_or_compute(self, key: tuple, compute: Callable[[], T]) -> T:
        """Return the value for ``key``, computing it at most once
        across all concurrent callers."""
        if not self.enabled:
            return compute()
        while True:
            with self._lock:
                if key in self._values:
                    self._hits += 1
                    return self._values[key]  # type: ignore[return-value]
                event = self._pending.get(key)
                if event is None:
                    event = self._pending[key] = threading.Event()
                    self._misses += 1
                    leader = True
                else:
                    self._coalesced += 1
                    leader = False
            if leader:
                try:
                    value = compute()
                except BaseException:
                    with self._lock:
                        self._pending.pop(key, None)
                    event.set()
                    raise
                with self._lock:
                    self._values[key] = value
                    self._pending.pop(key, None)
                event.set()
                return value
            ctx = obs_tracing.current()
            wait_start = time.perf_counter()
            event.wait()
            if ctx is not None:
                # The follower's trace shows it waited for a leader
                # elected elsewhere (the leader's own trace carries the
                # compute span; this cross-trace link is the key).
                obs_tracing.TRACER.record(
                    "singleflight_wait", wait_start, time.perf_counter(),
                    parent=ctx, attrs={"layer": self.layer},
                )
            # Either the leader stored the value (next loop hits) or it
            # failed (this follower re-runs the election and computes).

    def snapshot(self) -> MemoStats:
        with self._lock:
            return MemoStats(hits=self._hits, misses=self._misses)

    def clear(self) -> None:
        with self._lock:
            self._values.clear()
            self._hits = 0
            self._misses = 0
            self._coalesced = 0


#: The process-global whole-run result memo the prediction service
#: serves warm queries from.  Not toggled by :func:`set_cache_enabled`
#: (that switch governs engine-internal recomputation purity); the
#: server decides whether to use it.
RESULT_CACHE = SingleFlightCache()


class SetupMemoCache:
    """A bounded LRU memo for problem-setup builders.

    Every port of one application rebuilds the identical problem data
    (the CoMD lattice, the XSBench grids, the miniFE matrix) for each
    (model, platform, precision) cell of a study — by far the
    dominant per-run cost at paper scale.  The builders are
    deterministic functions of ``(config, precision[, seed])``, so
    their outputs are memoized here.

    Hits return a **deep copy** of the stored value: ports are free to
    mutate the state they receive, and a copy of a deterministic
    build is bit-identical to a fresh build.  The LRU bound keeps at
    most ``maxsize`` problem instances resident per process.
    """

    def __init__(self, maxsize: int = 4, enabled: bool = True) -> None:
        self.maxsize = maxsize
        self.enabled = enabled
        self._values: OrderedDict[tuple, object] = OrderedDict()
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._values)

    def lookup(self, key: tuple, compute: Callable[[], T]) -> T:
        if not self.enabled:
            return compute()
        rec = obs_spans.active()
        if key in self._values:
            self._hits += 1
            self._values.move_to_end(key)
            if rec is not None:
                rec.cache_event("setup", hit=True, kind=str(key[1]))
            return copy.deepcopy(self._values[key])  # type: ignore[return-value]
        self._misses += 1
        if rec is not None:
            rec.cache_event("setup", hit=False, kind=str(key[1]))
        value = compute()
        self._values[key] = copy.deepcopy(value)
        while len(self._values) > self.maxsize:
            self._values.popitem(last=False)
        return value

    def snapshot(self) -> MemoStats:
        return MemoStats(hits=self._hits, misses=self._misses)

    def clear(self) -> None:
        self._values.clear()
        self._hits = 0
        self._misses = 0


#: The process-global cache backing the apps' ``make_*``/``assemble``
#: problem builders.
SETUP_CACHE = SetupMemoCache()


#: Registered projection stubs: (builder module, builder qualname) ->
#: a cheap builder producing state with the real shapes/dtypes but no
#: data.  Used only inside :func:`projection_stubs` blocks.
PROJECTION_STUBS: dict[tuple[str, str], Callable[..., object]] = {}

_STUB_STATE = threading.local()

#: Cross-capture memo for stub builds.  One schedule capture exists per
#: (app, model, platform, precision) cell, but the stub build depends
#: only on (config, precision): without sharing, capturing a whole
#: study rebuilds the same stub state ~20 times per app.  Shared **by
#: reference** (no deep copies): stubs are only served in projection
#: capture, where kernel bodies never run, so a port either leaves the
#: state bitwise intact (CoMD's rebins recompute identical tables) or
#: mutates only host scalars no schedule or checksum reads (LULESH's
#: ``dt``/``time``).  Bounded LRU; cleared by :func:`clear_caches` and
#: bypassed whenever :data:`SETUP_CACHE` is disabled (``use_cache=False``
#: must recompute everything).
_STUB_CACHE: "OrderedDict[tuple, object]" = OrderedDict()
_STUB_CACHE_MAX = 8


def projection_stub(builder: Callable[..., T]) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Register a shape-faithful stand-in for a ``memoized_setup`` builder.

    Inside a :func:`projection_stubs` block the stub replaces the real
    builder (bypassing :data:`SETUP_CACHE` and its deep copies).  A stub
    must reproduce every array shape and dtype the port's schedule
    depends on — kernel specs, buffer sizes and loop trip counts are
    all shape-derived in projection mode, where kernel bodies never
    execute — but may leave the data itself zeroed.
    """

    def register(stub: Callable[..., T]) -> Callable[..., T]:
        PROJECTION_STUBS[(builder.__module__, builder.__qualname__)] = stub
        return stub

    return register


@contextmanager
def projection_stubs() -> Iterator[None]:
    """Serve registered stubs instead of real problem builds.

    Only meaningful for projection-mode schedule capture: functional
    runs read the data and must never see stubs.
    """
    previous = getattr(_STUB_STATE, "active", False)
    _STUB_STATE.active = True
    try:
        yield
    finally:
        _STUB_STATE.active = previous


def memoized_setup(builder: Callable[..., T]) -> Callable[..., T]:
    """Back a deterministic problem builder with :data:`SETUP_CACHE`.

    The key is the builder's qualified name plus the ``repr`` of its
    arguments (the apps' config dataclasses repr every field), so
    equal-content calls share one build regardless of object identity.
    """

    @functools.wraps(builder)
    def wrapper(*args: object, **kwargs: object) -> T:
        if getattr(_STUB_STATE, "active", False):
            stub = PROJECTION_STUBS.get((builder.__module__, builder.__qualname__))
            if stub is not None:
                if not SETUP_CACHE.enabled:
                    return stub(*args, **kwargs)
                key = (
                    builder.__module__,
                    builder.__qualname__,
                    repr(args),
                    repr(sorted(kwargs.items())),
                )
                if key in _STUB_CACHE:
                    _STUB_CACHE.move_to_end(key)
                    return _STUB_CACHE[key]  # type: ignore[return-value]
                value = stub(*args, **kwargs)
                _STUB_CACHE[key] = value
                while len(_STUB_CACHE) > _STUB_CACHE_MAX:
                    _STUB_CACHE.popitem(last=False)
                return value
        key = (
            builder.__module__,
            builder.__qualname__,
            repr(args),
            repr(sorted(kwargs.items())),
        )
        return SETUP_CACHE.lookup(key, lambda: builder(*args, **kwargs))

    return wrapper


def set_cache_enabled(enabled: bool) -> None:
    """Enable or disable every memo layer (pricing, setup, trace, plan)."""
    KERNEL_CACHE.enabled = enabled
    SETUP_CACHE.enabled = enabled
    TRACE_CACHE.enabled = enabled
    PLAN_CACHE.enabled = enabled


def clear_caches() -> None:
    """Drop all memoized values and counters in this process."""
    KERNEL_CACHE.clear()
    SETUP_CACHE.clear()
    TRACE_CACHE.clear()
    PLAN_CACHE.clear()
    RESULT_CACHE.clear()
    _STUB_CACHE.clear()


@contextmanager
def cache_disabled() -> Iterator[None]:
    """Force recomputation within the block (e.g. for cross-checks)."""
    previous = (
        KERNEL_CACHE.enabled, SETUP_CACHE.enabled, TRACE_CACHE.enabled,
        PLAN_CACHE.enabled,
    )
    KERNEL_CACHE.enabled = False
    SETUP_CACHE.enabled = False
    TRACE_CACHE.enabled = False
    PLAN_CACHE.enabled = False
    try:
        yield
    finally:
        (
            KERNEL_CACHE.enabled, SETUP_CACHE.enabled, TRACE_CACHE.enabled,
            PLAN_CACHE.enabled,
        ) = previous


def gpu_state_key(gpu: GPUDevice) -> tuple:
    """Everything about a GPU the timing model reads: the (frozen)
    spec plus the two mutable clock domains the sweeps adjust."""
    return (gpu.spec, gpu.core_clock.current_mhz, gpu.memory_clock.current_mhz)


def cpu_state_key(cpu: CPUDevice) -> tuple:
    return (cpu.spec,)


def cached_time_gpu_kernel(
    lowered: LoweredKernel, gpu: GPUDevice, precision: Precision
) -> KernelTiming:
    """Memoized :func:`repro.engine.timing.time_gpu_kernel`."""
    key = ("gpu-timing", lowered.cache_key(), gpu_state_key(gpu), precision)
    return KERNEL_CACHE.lookup(key, lambda: time_gpu_kernel(lowered, gpu, precision))


def cached_time_cpu_kernel(
    spec: KernelSpec, cpu: CPUDevice, precision: Precision, threads: int = 1
) -> KernelTiming:
    """Memoized :func:`repro.engine.timing.time_cpu_kernel`."""
    key = ("cpu-timing", spec, cpu_state_key(cpu), precision, threads)
    return KERNEL_CACHE.lookup(key, lambda: time_cpu_kernel(spec, cpu, precision, threads=threads))


def cached_simulate_kernel(
    lowered: LoweredKernel, gpu: GPUDevice, precision: Precision
) -> ScheduleResult:
    """Memoized :func:`repro.engine.scheduler.simulate_kernel`."""
    key = ("schedule", lowered.cache_key(), gpu_state_key(gpu), precision)
    return KERNEL_CACHE.lookup(key, lambda: simulate_kernel(lowered, gpu, precision))
