"""Kernel intermediate representation.

A :class:`KernelSpec` describes one GPU kernel (or parallel CPU loop)
in architecture-neutral terms: how much arithmetic it does, how many
bytes it touches and in what pattern, and which optimizations its
best-known implementation uses (LDS tiling, unrolling, ...).

Programming-model compilers (``repro.models``) *lower* a spec into a
:class:`LoweredKernel`, dropping whatever the model cannot express —
OpenACC cannot use the LDS, C++ AMP cannot unroll, etc. (Figure 11).
The timing model then prices the lowered kernel on a device.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum


@dataclass(frozen=True)
class OpCount:
    """Dynamic operation counts for one kernel launch.

    All counts are totals across every work-item of the launch.
    ``bytes_read``/``bytes_written`` are *useful* bytes; the memory
    system may move more (burst padding, cache-line fills).
    """

    flops: float = 0.0
    int_ops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def total_ops(self) -> float:
        return self.flops + self.int_ops

    def scaled(self, factor: float) -> "OpCount":
        """Counts for a problem ``factor`` times larger (linear scaling)."""
        return OpCount(
            flops=self.flops * factor,
            int_ops=self.int_ops * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
        )

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            flops=self.flops + other.flops,
            int_ops=self.int_ops + other.int_ops,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
        )

    def arithmetic_intensity(self) -> float:
        """FLOPs per useful byte — the roofline x-axis."""
        if self.total_bytes == 0:
            return math.inf
        return self.flops / self.total_bytes


class AccessKind(Enum):
    """Shape of a kernel's global-memory access stream."""

    STREAMING = "streaming"  # unit-stride, no reuse (read-memory, axpy)
    STENCIL = "stencil"  # structured neighbours, high reuse (LULESH)
    NEIGHBOR_LIST = "neighbor-list"  # cell/neighbour gathers, some reuse (CoMD)
    BINARY_SEARCH = "binary-search"  # tree descent + random row gather (XSBench)
    CSR_SPMV = "csr-spmv"  # streamed matrix + gathered vector (miniFE)


@dataclass(frozen=True)
class AccessPattern:
    """Parametric description of a kernel's memory behaviour.

    ``traffic_multiplier`` analytically predicts DRAM traffic per useful
    byte; ``repro.engine.trace`` generates concrete address traces from
    the same parameters so the cache simulator can validate the
    prediction (Table I's LLC miss rates).
    """

    kind: AccessKind
    working_set_bytes: float
    request_bytes: int = 4
    #: Fraction of accesses that re-touch recently used lines (temporal
    #: locality the LLC can capture even when the working set spills).
    reuse_fraction: float = 0.0
    #: DRAM row-buffer efficiency: 1.0 for long unit-stride bursts,
    #: lower for scattered request streams.
    row_buffer_efficiency: float = 1.0
    #: For BINARY_SEARCH: number of elements in the searched table.
    table_entries: int = 0

    def __post_init__(self) -> None:
        if self.working_set_bytes <= 0:
            raise ValueError("working_set_bytes must be positive")
        if not 0.0 <= self.reuse_fraction < 1.0:
            raise ValueError("reuse_fraction must be in [0, 1)")
        if not 0.0 < self.row_buffer_efficiency <= 1.0:
            raise ValueError("row_buffer_efficiency must be in (0, 1]")

    def traffic_multiplier(self, cache_bytes: int, line_bytes: int = 64) -> float:
        """Predicted DRAM bytes moved per useful byte requested.

        Streaming unit-stride traffic moves exactly what it uses (the
        line fill is fully consumed).  Scattered patterns pay for whole
        lines per request; temporal reuse captured by the cache removes
        a fraction of that.
        """
        fits = self.working_set_bytes <= cache_bytes
        if self.kind is AccessKind.STREAMING:
            # Sequential fills: every byte of every fetched line is used.
            return 0.0 if fits and self.reuse_fraction > 0 else 1.0
        if self.kind is AccessKind.STENCIL:
            # Neighbour re-reads hit in cache; only the compulsory
            # streaming traffic (1 - reuse) reaches DRAM.
            survive = 1.0 - self.reuse_fraction if not fits else 0.15
            return max(0.1, survive)
        if self.kind is AccessKind.NEIGHBOR_LIST:
            # Gathered neighbours pad to a line but adjacent particles
            # share lines; reuse across neighbouring cells filters some.
            line_waste = min(4.0, line_bytes / max(self.request_bytes, 16))
            survive = 1.0 - self.reuse_fraction
            return max(0.2, line_waste * survive) if not fits else 0.3
        if self.kind is AccessKind.BINARY_SEARCH:
            # Upper levels of the tree are cache-resident; each lookup
            # pays full lines for the uncached lower levels plus the
            # random data-row gather.
            if self.table_entries <= 0:
                raise ValueError("BINARY_SEARCH pattern needs table_entries")
            levels = max(1.0, math.log2(self.table_entries))
            cached_levels = min(levels, math.log2(max(2.0, cache_bytes / line_bytes)))
            uncached = max(0.0, levels - cached_levels) + 1.0  # +1 row gather
            pad = line_bytes / self.request_bytes
            return (uncached / levels) * pad * (1.0 - self.reuse_fraction)
        if self.kind is AccessKind.CSR_SPMV:
            # Matrix values/indices stream (multiplier 1); the x-vector
            # gather pads to lines but is banded, so reuse filters it.
            stream_share = 0.75
            gather_pad = line_bytes / max(self.request_bytes, 8)
            gather = (1.0 - stream_share) * gather_pad * (1.0 - self.reuse_fraction)
            return stream_share + gather if not fits else 0.5
        raise AssertionError(f"unhandled access kind {self.kind}")


@dataclass(frozen=True)
class KernelSpec:
    """One kernel as written by an expert (all optimizations available).

    The spec captures the *best-known* form of the kernel; programming
    models subtract what they cannot express when lowering.
    """

    name: str
    work_items: int
    ops: OpCount
    access: AccessPattern
    workgroup_size: int = 256
    #: Dynamic instructions per work-item (ALU + address + control).
    instructions_per_item: float = 0.0
    registers_per_thread: int = 32
    #: LDS the tiled/hand-tuned form uses, and what fraction of global
    #: traffic that tiling removes (0 when the kernel cannot tile).
    lds_bytes_per_workgroup: int = 0
    lds_traffic_filter: float = 0.0
    #: Fraction of wavefront execution lost to branch divergence when
    #: the compiler does not restructure the control flow.
    divergence: float = 0.0
    #: Fraction of instructions removable by unrolling + code motion.
    unroll_benefit: float = 0.0
    #: Fraction of the loop body a CPU autovectorizer can put on SIMD
    #: lanes (gather-heavy loops vectorize poorly on 2014 x86).
    cpu_simd_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.work_items <= 0:
            raise ValueError(f"kernel {self.name!r}: work_items must be positive")
        if not 0.0 <= self.lds_traffic_filter < 1.0:
            raise ValueError(f"kernel {self.name!r}: lds_traffic_filter in [0,1)")
        if not 0.0 <= self.divergence < 1.0:
            raise ValueError(f"kernel {self.name!r}: divergence in [0,1)")
        if not 0.0 <= self.unroll_benefit < 1.0:
            raise ValueError(f"kernel {self.name!r}: unroll_benefit in [0,1)")
        if not 0.0 < self.cpu_simd_fraction <= 1.0:
            raise ValueError(f"kernel {self.name!r}: cpu_simd_fraction in (0,1]")

    @property
    def instructions(self) -> float:
        """Total dynamic instructions for the launch."""
        per_item = self.instructions_per_item
        if per_item <= 0:
            # Fall back to op counts: one instruction per op plus one
            # per 4 bytes moved (loads/stores).
            per_item = (self.ops.total_ops + self.ops.total_bytes / 4.0) / self.work_items
        return per_item * self.work_items


@dataclass(frozen=True)
class LoweredKernel:
    """A kernel after a programming model's compiler lowered it.

    The fields restate the spec's tunables as *what the generated code
    actually does* on the target.
    """

    spec: KernelSpec
    #: SIMD lane utilisation of the generated ISA (1.0 = hand-tuned).
    vector_efficiency: float
    #: Whether the generated code uses the LDS tiling of the spec.
    uses_lds: bool
    #: Instruction-count inflation from missing unroll/code-motion.
    instruction_scale: float
    #: Residual divergence after (or without) compiler restructuring.
    divergence: float
    #: Coalescing quality of the generated loads/stores: the fraction of
    #: peak DRAM bandwidth the generated access stream can draw.  This
    #: is what the paper's read-memory experiment isolates (Sec. VI-A):
    #: hand-tuned OpenCL saturates the bus while OpenACC's generated
    #: code reaches about half of it.
    memory_efficiency: float = 1.0
    #: Human-readable lowering decisions, for reports and tests.
    notes: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0.0 < self.vector_efficiency <= 1.0:
            raise ValueError("vector_efficiency must be in (0, 1]")
        if not 0.0 < self.memory_efficiency <= 1.0:
            raise ValueError("memory_efficiency must be in (0, 1]")
        if self.instruction_scale < 1.0:
            raise ValueError("instruction_scale must be >= 1")

    @property
    def instructions(self) -> float:
        return self.spec.instructions * self.instruction_scale

    def cache_key(self) -> tuple:
        """Hashable identity of everything that prices this lowering.

        Two lowerings with equal keys produce bit-identical timings on
        the same device state, so memoization (``repro.engine.memo``)
        can return a cached result.  ``notes`` are deliberately
        excluded: they describe *why* the numbers are what they are,
        not what the timing model sees.
        """
        return (
            self.spec,
            self.vector_efficiency,
            self.uses_lds,
            self.instruction_scale,
            self.divergence,
            self.memory_efficiency,
        )

    def dram_traffic_bytes(self, cache_bytes: int, line_bytes: int = 64) -> float:
        """DRAM bytes this lowered kernel moves on a device with the
        given last-level cache."""
        useful = self.spec.ops.total_bytes
        multiplier = self.spec.access.traffic_multiplier(cache_bytes, line_bytes)
        traffic = useful * max(multiplier, 0.05)
        if self.uses_lds and self.spec.lds_traffic_filter > 0:
            traffic *= 1.0 - self.spec.lds_traffic_filter
        return traffic


def hand_tuned(spec: KernelSpec) -> LoweredKernel:
    """The expert lowering: everything the spec allows (OpenCL's path)."""
    return LoweredKernel(
        spec=spec,
        vector_efficiency=1.0,
        uses_lds=spec.lds_bytes_per_workgroup > 0,
        instruction_scale=1.0,
        divergence=spec.divergence,
        notes=("hand-tuned",),
    )


def with_spec(lowered: LoweredKernel, spec: KernelSpec) -> LoweredKernel:
    """Rebind a lowering decision to a (rescaled) spec."""
    return replace(lowered, spec=spec)
