"""Columnar kernel pricing: batched, bit-identical to ``timing.py``.

The columnar study engine (:mod:`repro.engine.study_vec`) gathers the
unique kernels of a whole study into arrays and prices them in one
call per device state.  The arithmetic here mirrors
:func:`repro.engine.timing.time_gpu_kernel` /
:func:`~repro.engine.timing.time_cpu_kernel` *operation for
operation* — same expressions, same association order, same
float64 elementwise ops — so each batched timing is bit-identical to
the scalar pricing of the same kernel on the same device state.  That
identity is what lets both engines share :data:`~repro.engine.memo.KERNEL_CACHE`
entries and is asserted by ``tests/engine/test_study_vec.py``.

Two kinds of quantities appear:

* **per-kernel coefficients** computed by shared scalar helpers
  (:func:`~repro.hardware.compute_unit.occupancy`, traffic prediction,
  :func:`~repro.engine.timing.cpu_vector_rate`) — gathered in Python,
  exactly as the scalar path computes them;
* **the roofline arithmetic** over those coefficient arrays — done as
  batched NumPy float64 ops, which are IEEE-identical to the same
  sequence of Python float ops.

Every field of the returned :class:`~repro.engine.timing.KernelTiming`
objects is converted back to a Python ``float``: values flow into the
shared memo cache and ultimately into ``json.dumps`` (goldens,
exports), which rejects ``np.float64`` — and the scalar engine must be
able to consume cache entries this engine inserted.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..hardware.compute_unit import latency_hiding_factor, occupancy
from ..hardware.device import CPUDevice, GPUDevice
from ..hardware.specs import Precision
from .energy import clock_power_scale, kernel_joules
from .kernel import AccessKind, KernelSpec, LoweredKernel
from .timing import (
    CPU_LOOP_FLOOR_S,
    CPU_MISS_LATENCY_S,
    GPU_KERNEL_FLOOR_S,
    SCATTER_DRAM_LATENCY_S,
    SCATTER_MLP,
    SCATTER_PIPELINE_CYCLES,
    KernelTiming,
    cpu_stream_efficiency,
    cpu_vector_rate,
)


def time_gpu_kernel_batch(
    lowereds: Sequence[LoweredKernel],
    gpu: GPUDevice,
    precision: Precision,
) -> list[KernelTiming]:
    """Price a batch of lowered kernels on one GPU state.

    Returns one :class:`KernelTiming` per input, each bit-identical to
    ``time_gpu_kernel(lowered, gpu, precision)``.
    """
    if not lowereds:
        return []
    specs = [lowered.spec for lowered in lowereds]

    occs = [
        occupancy(
            gpu.spec,
            registers_per_thread=spec.registers_per_thread,
            lds_bytes_per_workgroup=spec.lds_bytes_per_workgroup if lowered.uses_lds else 0,
            workgroup_size=spec.workgroup_size,
            total_work_items=spec.work_items,
        )
        for lowered, spec in zip(lowereds, specs)
    ]
    hiding = np.array([latency_hiding_factor(occ) for occ in occs])
    useful = np.array([lowered.vector_efficiency for lowered in lowereds]) * (
        1.0 - np.array([lowered.divergence for lowered in lowereds])
    )

    # --- compute side -------------------------------------------------
    flops = np.array([spec.ops.flops for spec in specs])
    flop_seconds = np.where(flops > 0, flops / (gpu.peak_flops(precision) * useful), 0.0)
    lanes_per_cu = gpu.spec.simd_per_cu * gpu.spec.lanes_per_simd
    issue_rate = gpu.spec.compute_units * lanes_per_cu * gpu.core_clock.hz
    instructions = np.array([lowered.instructions for lowered in lowereds])
    if precision is Precision.DOUBLE:
        fp_fraction = np.minimum(0.9, flops / np.maximum(instructions, 1.0))
        instructions = instructions * (
            (1.0 - fp_fraction) + fp_fraction / gpu.spec.dp_rate_ratio
        )
    issue_seconds = instructions / (issue_rate * useful)
    compute_seconds = np.maximum(flop_seconds, issue_seconds) / hiding

    # --- memory side ----------------------------------------------------
    l2_bytes = gpu.spec.l2_cache.size_bytes
    dram = np.array([lowered.dram_traffic_bytes(l2_bytes) for lowered in lowereds])
    bandwidth = np.array(
        [
            gpu.memory.effective_bandwidth(
                lowered.spec.access.row_buffer_efficiency * lowered.memory_efficiency
            )
            for lowered in lowereds
        ]
    ) * 1e9
    memory_seconds = np.where(dram != 0.0, dram / bandwidth / hiding, 0.0)

    mlp_values = [SCATTER_MLP.get(spec.access.kind) for spec in specs]
    scatter = np.array([value is not None for value in mlp_values]) & (dram != 0.0)
    if scatter.any():
        mlp = np.array([value if value is not None else 1.0 for value in mlp_values])
        requests = dram / gpu.spec.l2_cache.line_bytes
        waves = np.array([occ.wavefronts_per_cu for occ in occs], dtype=np.int64)
        outstanding = (gpu.spec.compute_units * waves) * mlp
        dram_latency = SCATTER_DRAM_LATENCY_S * (
            gpu.memory.clock.default_mhz / gpu.memory.clock.current_mhz
        )
        latency = SCATTER_PIPELINE_CYCLES / gpu.core_clock.hz + dram_latency
        memory_efficiency = np.array([lowered.memory_efficiency for lowered in lowereds])
        latency_seconds = requests * latency / outstanding / memory_efficiency
        memory_seconds = np.where(
            scatter, np.maximum(memory_seconds, latency_seconds), memory_seconds
        )

    seconds = np.maximum(np.maximum(compute_seconds, memory_seconds), GPU_KERNEL_FLOOR_S)
    cycles = seconds * gpu.core_clock.hz

    # Energy is scalar-helper arithmetic on the *final* per-cell floats
    # (same call, same arguments as the scalar path) — bit-identity by
    # construction, not by re-derivation.
    power_scale = clock_power_scale(gpu.core_clock.current_mhz, gpu.core_clock.default_mhz)

    timings: list[KernelTiming] = []
    for i, (lowered, occ) in enumerate(zip(lowereds, occs)):
        cell_seconds = float(seconds[i])
        cell_compute = float(compute_seconds[i])
        cell_memory = float(memory_seconds[i])
        if cell_seconds == GPU_KERNEL_FLOOR_S:
            limited_by = "floor"
        elif cell_compute >= cell_memory:
            limited_by = "compute"
        else:
            limited_by = "memory"
        timings.append(
            KernelTiming(
                name=lowered.spec.name,
                seconds=cell_seconds,
                cycles=float(cycles[i]),
                instructions=float(lowered.instructions),
                dram_bytes=float(dram[i]),
                limited_by=limited_by,
                compute_seconds=cell_compute,
                memory_seconds=cell_memory,
                occupancy_waves=occ.wavefronts_per_cu,
                joules=kernel_joules(gpu.spec.power, cell_seconds, cell_compute, power_scale),
            )
        )
    return timings


#: Access kinds whose predictable streams CPU prefetchers cover
#: (mirrors the tuple inline in ``time_cpu_kernel``).
_PREFETCHABLE = (AccessKind.STREAMING, AccessKind.STENCIL, AccessKind.CSR_SPMV)


def time_cpu_kernel_batch(
    specs: Sequence[KernelSpec],
    cpu: CPUDevice,
    precision: Precision,
    threads: int = 1,
) -> list[KernelTiming]:
    """Price a batch of parallel loops on the host CPU.

    Returns one :class:`KernelTiming` per spec, each bit-identical to
    ``time_cpu_kernel(spec, cpu, precision, threads=threads)``.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    threads = min(threads, cpu.spec.cores)
    if not specs:
        return []

    flops = np.array([spec.ops.flops for spec in specs])
    rates = np.array([cpu_vector_rate(cpu, spec, precision, threads) for spec in specs])
    flop_seconds = np.where(flops > 0, flops / rates, 0.0)
    scalar_rate = threads * cpu.spec.clock_mhz * 1e6 * 2.0
    int_ops = np.array([spec.ops.int_ops for spec in specs])
    issue_seconds = np.where(int_ops != 0.0, int_ops / scalar_rate, 0.0)
    compute_seconds = flop_seconds + issue_seconds

    host_memory = cpu.memory_system()
    llc_bytes = cpu.spec.llc.size_bytes
    traffic = np.array(
        [
            spec.ops.total_bytes * max(spec.access.traffic_multiplier(llc_bytes), 0.05)
            for spec in specs
        ]
    )
    stream_efficiency = cpu_stream_efficiency(threads)
    peak_bandwidth = host_memory.peak_bandwidth_at_clock()

    def _bandwidth(spec: KernelSpec) -> float:
        row_buffer = spec.access.row_buffer_efficiency
        if spec.access.kind in _PREFETCHABLE:
            row_buffer = max(row_buffer, 0.8)
        return peak_bandwidth * (row_buffer * stream_efficiency) * 1e9

    bandwidth = np.array([_bandwidth(spec) for spec in specs])
    memory_seconds = np.where(traffic != 0.0, traffic / bandwidth, 0.0)

    mlp_values = [SCATTER_MLP.get(spec.access.kind) for spec in specs]
    scatter = np.array([value is not None for value in mlp_values]) & (traffic != 0.0)
    if scatter.any():
        requests = traffic / cpu.spec.llc.line_bytes
        per_core_mlp = np.array(
            [
                1.5 if spec.access.kind is AccessKind.BINARY_SEARCH else 6.0
                for spec in specs
            ]
        )
        outstanding = threads * per_core_mlp
        latency_seconds = requests * CPU_MISS_LATENCY_S / outstanding
        memory_seconds = np.where(
            scatter, np.maximum(memory_seconds, latency_seconds), memory_seconds
        )

    seconds = np.maximum(np.maximum(compute_seconds, memory_seconds), CPU_LOOP_FLOOR_S)
    cycles = (seconds * cpu.spec.clock_mhz) * 1e6
    thread_share = threads / cpu.spec.cores

    timings: list[KernelTiming] = []
    for i, spec in enumerate(specs):
        cell_seconds = float(seconds[i])
        cell_compute = float(compute_seconds[i])
        cell_memory = float(memory_seconds[i])
        if cell_seconds == CPU_LOOP_FLOOR_S:
            limited_by = "floor"
        elif cell_compute >= cell_memory:
            limited_by = "compute"
        else:
            limited_by = "memory"
        timings.append(
            KernelTiming(
                name=spec.name,
                seconds=cell_seconds,
                cycles=float(cycles[i]),
                instructions=float(spec.instructions),
                dram_bytes=float(traffic[i]),
                limited_by=limited_by,
                compute_seconds=cell_compute,
                memory_seconds=cell_memory,
                occupancy_waves=threads,
                joules=kernel_joules(
                    cpu.spec.power, cell_seconds, cell_compute, share=thread_share
                ),
            )
        )
    return timings
