"""Power integration: joules and energy-delay product.

The 2015 paper compared programming models on speedup and productivity
only — it had no power rails to read.  Memeti et al. (PAPERS.md) show
the modern form of the comparison reports energy and EDP alongside
both, so the engine integrates a simple but physical power model over
the same charge timeline it prices for time:

* **static** — every second a platform is powered it pays the idle
  (leakage + always-on) draw of host + accelerator, whatever runs;
* **dynamic** — each kernel adds switching power on its device,
  scaled quadratically with the core-clock ratio (CV²f with V tracking
  f along the DVFS curve) and linearly with achieved utilisation
  (a memory-stalled kernel clocks far fewer gates than an FMA-dense
  one, but fetch/decode and the memory pipes never go fully quiet —
  hence the idle-activity floor);
* **transfer** — staging copies power the link + DMA engines for the
  duration of the copy (zero on the APU: unified memory moves nothing).

Every helper takes and returns plain Python floats and is called on the
*final* per-kernel scalars by both the scalar timing path
(``engine.timing``) and the columnar batch path (``engine.timing_vec``),
which is what keeps joules bit-identical between the two engines.
"""

from __future__ import annotations

from ..hardware.specs import PowerSpec

#: Fraction of peak dynamic power a fully stalled kernel still draws
#: (instruction fetch, schedulers, memory pipes).
IDLE_ACTIVITY_FLOOR = 0.3


def clock_power_scale(current_mhz: float, nominal_mhz: float) -> float:
    """Dynamic-power multiplier for a core clocked off its nominal point.

    Classic CV²f with voltage tracking frequency along the DVFS curve
    collapses to a cubic; board measurements across DVFS states sit
    closer to quadratic (voltage floors at the low end), so that is what
    we integrate.
    """
    if nominal_mhz <= 0:
        return 1.0
    ratio = current_mhz / nominal_mhz
    return ratio * ratio


def kernel_joules(
    power: PowerSpec,
    seconds: float,
    busy_seconds: float,
    clock_scale: float = 1.0,
    share: float = 1.0,
) -> float:
    """Dynamic energy of one kernel: switching power x duration.

    ``busy_seconds`` is the compute-side time of the roofline — the
    portion of the launch the ALUs were actually switching; the rest of
    the duration the device idles at the activity floor.  ``share`` is
    the fraction of the device the launch occupies (threads/cores for a
    CPU loop; 1.0 for a GPU grid).
    """
    if seconds <= 0.0:
        return 0.0
    utilisation = busy_seconds / seconds
    if utilisation > 1.0:
        utilisation = 1.0
    elif utilisation < 0.0:
        utilisation = 0.0
    activity = IDLE_ACTIVITY_FLOOR + (1.0 - IDLE_ACTIVITY_FLOOR) * utilisation
    return power.peak_dynamic_w * share * clock_scale * activity * seconds


def transfer_joules(active_w: float, seconds: float) -> float:
    """Energy of one staging copy: link + DMA power for its duration."""
    return active_w * seconds


def static_joules(idle_watts: float, seconds: float) -> float:
    """Leakage + always-on energy of a platform over a whole run."""
    return idle_watts * seconds


def energy_delay_product(joules: float, seconds: float) -> float:
    """EDP in joule-seconds: the figure of merit Memeti et al. report."""
    return joules * seconds
