"""Runtime launch and buffer-management overheads.

Each programming-model runtime pays fixed software costs per kernel
launch and per buffer it manages.  These constants encode the software
stacks of Table III: the Catalyst OpenCL driver, the CLAMP C++ AMP
runtime (HSA stack v1.0 on the APU, Catalyst on the dGPU) and the PGI
OpenACC runtime.  They matter most for short kernels and for the
APU-side OpenCL buffer mapping cost that lets C++ AMP's HSA path win
XSBench on the APU (Sec. VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RuntimeOverheads:
    """Fixed software costs of one programming-model runtime."""

    #: Seconds of host-side cost per kernel enqueue+dispatch.
    kernel_launch_s: float
    #: Seconds per buffer made visible to a kernel (argument setup,
    #: residency check, map/unmap bookkeeping).
    per_buffer_s: float
    #: Seconds per byte of buffer *mapping* cost on unified-memory
    #: devices (zero for true zero-copy stacks like HSA; small but
    #: non-zero for OpenCL's cl_mem path on the APU).
    per_mapped_byte_s: float = 0.0

    def launch_cost(self, n_buffers: int, mapped_bytes: int = 0) -> float:
        """Total overhead of one launch touching ``n_buffers`` buffers."""
        return (
            self.kernel_launch_s
            + n_buffers * self.per_buffer_s
            + mapped_bytes * self.per_mapped_byte_s
        )

    def cost_components(self, n_buffers: int, mapped_bytes: int = 0) -> dict[str, float]:
        """The same cost split into its three software components —
        dispatch, buffer bookkeeping, APU mapping toll — for the
        telemetry layer's launch spans.  Sums to :meth:`launch_cost`."""
        return {
            "dispatch_s": self.kernel_launch_s,
            "buffers_s": n_buffers * self.per_buffer_s,
            "mapping_s": mapped_bytes * self.per_mapped_byte_s,
        }


#: Catalyst OpenCL on the discrete GPU: mature, but every enqueue goes
#: through the full command-queue flush path.
OPENCL_DGPU = RuntimeOverheads(kernel_launch_s=8e-6, per_buffer_s=0.5e-6)

#: Catalyst OpenCL on the APU: kernels still take the cl_mem path, so
#: "zero-copy" buffers pay a small per-byte pinning/mapping toll.
OPENCL_APU = RuntimeOverheads(
    kernel_launch_s=10e-6, per_buffer_s=0.5e-6, per_mapped_byte_s=2.0e-12
)

#: CLAMP C++ AMP over Catalyst (dGPU): an extra translation layer on
#: top of the same driver.
CPPAMP_DGPU = RuntimeOverheads(kernel_launch_s=12e-6, per_buffer_s=1.0e-6)

#: CLAMP C++ AMP over the HSA v1.0 stack (APU): user-mode queues and
#: true shared pointers — the cheapest dispatch of the lot.
CPPAMP_APU = RuntimeOverheads(kernel_launch_s=5e-6, per_buffer_s=0.2e-6)

#: PGI OpenACC runtime (both platforms): region entry/exit bookkeeping
#: around every offloaded loop nest.
OPENACC_DGPU = RuntimeOverheads(kernel_launch_s=15e-6, per_buffer_s=1.5e-6)
OPENACC_APU = RuntimeOverheads(kernel_launch_s=15e-6, per_buffer_s=1.5e-6)

#: OpenMP target-offload runtime (libomptarget and its vendor
#: equivalents): every ``target`` construct resolves mappings against
#: the device data environment and dispatches through a generic
#: plugin layer — heavier per launch than the PGI OpenACC runtime.
OMP_OFFLOAD_DGPU = RuntimeOverheads(kernel_launch_s=22e-6, per_buffer_s=2.0e-6)
OMP_OFFLOAD_APU = RuntimeOverheads(kernel_launch_s=22e-6, per_buffer_s=2.0e-6)

#: OpenMP parallel-region fork/join on the 4-core host.
OPENMP_REGION_S = 4e-6

#: Heterogeneous Compute (Sec. VII): HSA dispatch with OpenCL-grade
#: control — the "best of both worlds" AMD was building.
HC_APU = RuntimeOverheads(kernel_launch_s=4e-6, per_buffer_s=0.2e-6)
HC_DGPU = RuntimeOverheads(kernel_launch_s=8e-6, per_buffer_s=0.5e-6)
