"""Performance counters.

A single :class:`PerfCounters` instance accumulates everything one
application run produces: kernel time, transfer time, instruction and
byte counts, and launch counts.  Table I's IPC column and the speedups
of Figures 8/9 are both derived from these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class KernelRecord:
    """Timing record of one kernel launch."""

    name: str
    seconds: float
    cycles: float
    instructions: float
    dram_bytes: float
    limited_by: str
    device: str
    #: Dynamic switching energy of the launch (``repro.engine.energy``).
    joules: float = 0.0


@dataclass
class PerfCounters:
    """Aggregated counters for one application execution."""

    kernel_seconds: float = 0.0
    transfer_seconds: float = 0.0
    host_seconds: float = 0.0
    launch_overhead_seconds: float = 0.0
    instructions: float = 0.0
    cycles: float = 0.0
    flops: float = 0.0
    dram_bytes: float = 0.0
    bytes_to_device: int = 0
    bytes_to_host: int = 0
    kernel_launches: int = 0
    transfers: int = 0
    #: Dynamic energy integrated over the charge timeline
    #: (``repro.engine.energy``): kernel switching energy and staging
    #: link energy.  Static (idle) energy is added per run when the
    #: result is assembled — it depends on total duration, not events.
    kernel_joules: float = 0.0
    transfer_joules: float = 0.0
    kernels: list[KernelRecord] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """End-to-end simulated time of the run."""
        return (
            self.kernel_seconds
            + self.transfer_seconds
            + self.host_seconds
            + self.launch_overhead_seconds
        )

    @property
    def ipc(self) -> float:
        """Average retired instructions per (per-CU) cycle.

        This matches Table I's definition: dynamic instructions over
        elapsed device cycles, averaged over the compute units that the
        kernels ran on.
        """
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    def record_kernel(self, record: KernelRecord) -> None:
        self.kernels.append(record)
        self.kernel_seconds += record.seconds
        self.cycles += record.cycles
        self.instructions += record.instructions
        self.dram_bytes += record.dram_bytes
        self.kernel_launches += 1
        self.kernel_joules += record.joules

    def record_transfer(
        self, nbytes: int, seconds: float, direction: str, joules: float = 0.0
    ) -> None:
        self.transfer_seconds += seconds
        self.transfers += 1
        self.transfer_joules += joules
        if direction == "h2d":
            self.bytes_to_device += nbytes
        else:
            self.bytes_to_host += nbytes

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Combine counters of two runs (e.g. per-phase accounting)."""
        merged = PerfCounters(
            kernel_seconds=self.kernel_seconds + other.kernel_seconds,
            transfer_seconds=self.transfer_seconds + other.transfer_seconds,
            host_seconds=self.host_seconds + other.host_seconds,
            launch_overhead_seconds=self.launch_overhead_seconds + other.launch_overhead_seconds,
            instructions=self.instructions + other.instructions,
            cycles=self.cycles + other.cycles,
            flops=self.flops + other.flops,
            dram_bytes=self.dram_bytes + other.dram_bytes,
            bytes_to_device=self.bytes_to_device + other.bytes_to_device,
            bytes_to_host=self.bytes_to_host + other.bytes_to_host,
            kernel_launches=self.kernel_launches + other.kernel_launches,
            transfers=self.transfers + other.transfers,
            kernel_joules=self.kernel_joules + other.kernel_joules,
            transfer_joules=self.transfer_joules + other.transfer_joules,
        )
        merged.kernels = self.kernels + other.kernels
        return merged
