"""Cross-validation: the analytic timing model vs the event scheduler.

The closed-form roofline (`timing.py`) is fast enough to price every
launch of a study; the event-driven scheduler (`scheduler.py`) models
the machine in more detail but costs one event per workgroup.  This
module runs both over a set of kernels and reports where they diverge,
so calibration drift is caught mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.device import GPUDevice, make_dgpu_platform
from ..hardware.specs import Precision
from .kernel import KernelSpec, LoweredKernel, hand_tuned
from .memo import cached_simulate_kernel, cached_time_gpu_kernel


@dataclass(frozen=True)
class ValidationPoint:
    """Analytic vs scheduled time for one kernel."""

    kernel: str
    analytic_seconds: float
    scheduled_seconds: float

    @property
    def ratio(self) -> float:
        """scheduled / analytic (1.0 = perfect agreement)."""
        return self.scheduled_seconds / self.analytic_seconds

    def agrees(self, tolerance: float = 2.5) -> bool:
        """Within a multiplicative band around agreement."""
        return 1.0 / tolerance < self.ratio < tolerance


def validate_kernel(
    lowered: LoweredKernel,
    gpu: GPUDevice | None = None,
    precision: Precision = Precision.SINGLE,
) -> ValidationPoint:
    """Run one lowered kernel through both models."""
    gpu = gpu or make_dgpu_platform().gpu
    analytic = cached_time_gpu_kernel(lowered, gpu, precision).seconds
    scheduled = cached_simulate_kernel(lowered, gpu, precision).seconds
    return ValidationPoint(
        kernel=lowered.spec.name,
        analytic_seconds=analytic,
        scheduled_seconds=scheduled,
    )


def validate_specs(
    specs: dict[str, KernelSpec] | list[KernelSpec],
    gpu: GPUDevice | None = None,
    precision: Precision = Precision.SINGLE,
) -> list[ValidationPoint]:
    """Cross-validate a whole kernel set (e.g. one app's specs)."""
    if isinstance(specs, dict):
        specs = list(specs.values())
    gpu = gpu or make_dgpu_platform().gpu
    return [validate_kernel(hand_tuned(spec), gpu, precision) for spec in specs]


def disagreements(points: list[ValidationPoint], tolerance: float = 2.5) -> list[ValidationPoint]:
    """The points outside the agreement band (ideally empty)."""
    return [point for point in points if not point.agrees(tolerance)]
