"""Event-driven wavefront scheduler.

A discrete-event execution of one kernel launch: workgroups are
dispatched to compute units as slots free up, each workgroup overlaps
its compute phase with its DRAM traffic, and all CUs contend for the
one shared memory interface.  This is the detailed counterpart of the
closed-form model in :mod:`repro.engine.timing`; the two are
cross-validated in the test suite, and the scheduler additionally
exposes utilization and tail effects (partial last batches, uneven
workgroup distribution) that the analytic model smooths over.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from ..hardware.compute_unit import occupancy
from ..hardware.device import GPUDevice
from ..hardware.specs import Precision
from ..obs import spans as obs_spans
from .kernel import LoweredKernel
from .timing import GPU_KERNEL_FLOOR_S


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one scheduled kernel launch."""

    seconds: float
    cycles: float
    workgroups: int
    concurrent_groups_per_cu: int
    cu_busy_fraction: float  # mean CU busy time / makespan
    memory_busy_fraction: float  # DRAM busy time / makespan


def simulate_kernel(
    lowered: LoweredKernel,
    gpu: GPUDevice,
    precision: Precision,
) -> ScheduleResult:
    """Run one kernel launch through the event-driven scheduler."""
    spec = lowered.spec
    wg_size = min(spec.workgroup_size, spec.work_items)
    n_groups = math.ceil(spec.work_items / spec.workgroup_size)

    occ = occupancy(
        gpu.spec,
        registers_per_thread=spec.registers_per_thread,
        lds_bytes_per_workgroup=spec.lds_bytes_per_workgroup if lowered.uses_lds else 0,
        workgroup_size=spec.workgroup_size,
        total_work_items=spec.work_items,
    )
    waves_per_group = max(1, math.ceil(wg_size / gpu.spec.wavefront_size))
    concurrent = max(1, occ.wavefronts_per_cu // waves_per_group)

    # Per-workgroup service demands, derived from the launch totals.
    useful_lanes = lowered.vector_efficiency * (1.0 - lowered.divergence)
    lanes_per_cu = gpu.spec.simd_per_cu * gpu.spec.lanes_per_simd
    instr_per_group = lowered.instructions / n_groups
    compute_cycles = instr_per_group / (lanes_per_cu * useful_lanes)
    flops_per_group = spec.ops.flops / n_groups
    peak_flops_per_cu = gpu.peak_flops(precision) / gpu.spec.compute_units
    if flops_per_group > 0:
        flop_cycles = (
            flops_per_group / (peak_flops_per_cu * useful_lanes) * gpu.core_clock.hz
        )
        compute_cycles = max(compute_cycles, flop_cycles)

    dram_bytes_total = lowered.dram_traffic_bytes(gpu.spec.l2_cache.size_bytes)
    pattern_eff = spec.access.row_buffer_efficiency * lowered.memory_efficiency
    bw_bytes_per_cycle = (
        gpu.memory.effective_bandwidth(pattern_eff) * 1e9 / gpu.core_clock.hz
    )
    mem_cycles_per_group = (dram_bytes_total / n_groups) / bw_bytes_per_cycle

    # Event loop: (free_time, cu_index) heap; one slot entry per
    # concurrently resident workgroup on each CU.  Resident groups
    # overlap their *memory* phases, but the CU's issue pipelines are a
    # serial resource: each group's compute phase occupies them in
    # turn (this is what makes extra occupancy hide latency without
    # multiplying ALU throughput).
    slots: list[tuple[float, int]] = []
    for cu in range(gpu.spec.compute_units):
        for _ in range(concurrent):
            heapq.heappush(slots, (0.0, cu))

    memory_free = 0.0
    memory_busy = 0.0
    compute_free = [0.0] * gpu.spec.compute_units
    cu_busy = [0.0] * gpu.spec.compute_units
    makespan = 0.0

    for _ in range(n_groups):
        start, cu = heapq.heappop(slots)
        # Memory phase contends on the shared DRAM interface.
        mem_start = max(start, memory_free)
        mem_done = mem_start + mem_cycles_per_group
        memory_free = mem_done
        memory_busy += mem_cycles_per_group
        # Compute phase contends on the CU's issue pipelines.
        comp_start = max(start, compute_free[cu])
        comp_done = comp_start + compute_cycles
        compute_free[cu] = comp_done
        done = max(comp_done, mem_done)
        cu_busy[cu] += done - start
        makespan = max(makespan, done)
        heapq.heappush(slots, (done, cu))

    # The same pipeline ramp/drain floor the analytic model applies.
    seconds = max(makespan / gpu.core_clock.hz, GPU_KERNEL_FLOOR_S)
    mean_busy = sum(cu_busy) / len(cu_busy) / makespan if makespan else 0.0
    rec = obs_spans.active()
    if rec is not None:
        # Fires only when the memo layer actually re-simulates (cache
        # misses), which is itself worth seeing on the timeline.
        rec.instant(
            "scheduler", f"simulate:{spec.name}", "sim",
            workgroups=n_groups,
            concurrent_groups_per_cu=concurrent,
            cu_busy_fraction=round(min(1.0, mean_busy), 4),
            memory_busy_fraction=round(min(1.0, memory_busy / makespan), 4) if makespan else 0.0,
        )
    return ScheduleResult(
        seconds=seconds,
        cycles=makespan,
        workgroups=n_groups,
        concurrent_groups_per_cu=concurrent,
        cu_busy_fraction=min(1.0, mean_busy),
        memory_busy_fraction=min(1.0, memory_busy / makespan) if makespan else 0.0,
    )
