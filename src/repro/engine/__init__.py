"""Execution engine: kernel IR, timing model, traces and scheduling.

The engine prices *lowered kernels* (what a programming model's
compiler actually generated) on *devices* (the simulated hardware of
``repro.hardware``), producing the simulated times and performance
counters from which every figure of the paper is regenerated.
"""

from .counters import KernelRecord, PerfCounters
from .kernel import (
    AccessKind,
    AccessPattern,
    KernelSpec,
    LoweredKernel,
    OpCount,
    hand_tuned,
    with_spec,
)
from .launch import (
    CPPAMP_APU,
    CPPAMP_DGPU,
    HC_APU,
    HC_DGPU,
    OPENACC_APU,
    OPENACC_DGPU,
    OPENCL_APU,
    OPENCL_DGPU,
    OPENMP_REGION_S,
    RuntimeOverheads,
)
from .memo import (
    KERNEL_CACHE,
    SETUP_CACHE,
    TRACE_CACHE,
    KernelMemoCache,
    MemoStats,
    SetupMemoCache,
    TraceMemoCache,
    cache_disabled,
    cached_simulate_kernel,
    cached_time_cpu_kernel,
    cached_time_gpu_kernel,
    clear_caches,
    memoized_setup,
    set_cache_enabled,
)
from .scheduler import ScheduleResult, simulate_kernel
from .timing import (
    KernelTiming,
    cpu_stream_efficiency,
    cpu_vector_rate,
    time_cpu_kernel,
    time_gpu_kernel,
)
from .trace import (
    DEFAULT_REPLAY_ENGINE,
    REPLAY_ENGINES,
    TraceResult,
    generate_trace,
    make_replay_cache,
    replay_pattern,
    scaled_cache_spec,
)
from .validate import ValidationPoint, disagreements, validate_kernel, validate_specs

__all__ = [
    "AccessKind",
    "AccessPattern",
    "CPPAMP_APU",
    "CPPAMP_DGPU",
    "DEFAULT_REPLAY_ENGINE",
    "REPLAY_ENGINES",
    "HC_APU",
    "HC_DGPU",
    "KERNEL_CACHE",
    "KernelMemoCache",
    "KernelRecord",
    "KernelSpec",
    "KernelTiming",
    "LoweredKernel",
    "MemoStats",
    "OPENACC_APU",
    "OPENACC_DGPU",
    "OPENCL_APU",
    "OPENCL_DGPU",
    "OPENMP_REGION_S",
    "OpCount",
    "PerfCounters",
    "RuntimeOverheads",
    "SETUP_CACHE",
    "ScheduleResult",
    "SetupMemoCache",
    "TRACE_CACHE",
    "TraceMemoCache",
    "TraceResult",
    "ValidationPoint",
    "cache_disabled",
    "cached_simulate_kernel",
    "cached_time_cpu_kernel",
    "cached_time_gpu_kernel",
    "clear_caches",
    "cpu_stream_efficiency",
    "disagreements",
    "cpu_vector_rate",
    "generate_trace",
    "hand_tuned",
    "make_replay_cache",
    "memoized_setup",
    "replay_pattern",
    "scaled_cache_spec",
    "set_cache_enabled",
    "simulate_kernel",
    "time_cpu_kernel",
    "time_gpu_kernel",
    "validate_kernel",
    "validate_specs",
    "with_spec",
]
