"""Columnar whole-study pricing engine.

The scalar engine (:mod:`repro.exec.executor`) prices a study cell by
*running* its port: the port re-executes its host logic, re-builds (or
deep-copies) its problem setup, and issues tens of thousands of
``charge_*`` calls, each a Python-level price-and-record round trip.
At paper scale that costs minutes for a matrix whose actual pricing
content is a few hundred unique kernels.

This engine lowers the matrix instead of looping it:

1. **Capture** — each distinct schedule signature
   (:meth:`~repro.exec.plan.RunSpec.schedule_key`) runs its port once
   in capture mode: a :class:`~repro.models.base.ChargeLog` on the
   context turns every ``charge_*`` call into an event append over a
   deduplicated atom table.  Problem setups are served by registered
   projection stubs (shape-faithful, no data, no deep copies).  The
   captured :class:`ChargeProgram` is clock-independent and memoized in
   :data:`~repro.engine.memo.PLAN_CACHE`, so an entire frequency sweep
   shares one capture.
2. **Batch pricing** — per cell, the atoms missing from
   :data:`~repro.engine.memo.KERNEL_CACHE` are priced in one columnar
   call (:mod:`repro.engine.timing_vec`), under exactly the keys the
   scalar path uses, so either engine serves the other's cache.
3. **Fold** — simulated seconds and every counter are reassembled with
   ``np.add.accumulate`` over the event stream: a strictly
   left-associated IEEE fold, the same addition sequence the port's
   accumulator and :class:`~repro.engine.counters.PerfCounters`
   performed — bit-identical, not merely close.  (``np.sum`` would use
   pairwise summation and drift in the last ulps.)

Cells the fold cannot express run through the scalar engine unchanged:
functional (non-projection) runs, the Heterogeneous Compute model
(a two-queue makespan, not a single accumulator), telemetry recordings
(spans are per-charge by construction), and fault-injection campaigns
(the chaos harness drives the scalar retry ladder).  The scalar path
is also the per-cell fallback if anything in the columnar path raises.

Deliberately *not* imported from ``repro.engine.__init__``:
``repro.models`` imports ``repro.engine.memo`` at import time, so
re-exporting this module (which imports ``repro.models.base``) from
the package root would create an import cycle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from ..apps.base import RunResult
from ..engine import energy, memo
from ..engine.counters import PerfCounters
from ..engine.timing import KernelTiming
from ..engine.timing_vec import time_cpu_kernel_batch, time_gpu_kernel_batch
from ..exec.checkpoint import CheckpointJournal
from ..exec.executor import (
    ExecStats,
    ExecutionInterrupted,
    RunOutcome,
    _cache_setting,
    _limited_by_tallies,
    execute,
)
from ..exec.faults import FaultPlan, RunError, fault_plan_from_env
from ..exec.plan import RunSpec, SpecLattice
from ..exec.retry import RetryPolicy, run_with_retry, validate_result
from ..models.base import ChargeLog, ExecutionContext

#: Models whose simulated clock is a single left-fold of ``charge_*``
#: returns.  Heterogeneous Compute is excluded: its CPU and GPU queues
#: accumulate separately and the run time is their makespan.
VECTOR_MODELS = frozenset(
    {"OpenMP", "Serial", "OpenCL", "C++ AMP", "OpenACC", "OpenMP Offload"}
)


def vector_eligible(spec: RunSpec) -> bool:
    """Whether the columnar engine can price this cell.

    Projection mode only (functional runs execute kernel bodies, which
    capture skips by construction), and single-accumulator models only.
    """
    return spec.projection and spec.model in VECTOR_MODELS


@dataclass(frozen=True)
class ChargeProgram:
    """One port's captured schedule, lowered to arrays.

    Immutable and clock-independent: every cell sharing a schedule key
    prices this same program against its own device state.  Event
    arrays are parallel over the capture's charge order; ``-1`` marks
    the unused index column of an event.
    """

    app: str
    model: str
    checksum: float
    #: Unique priceable units: ``("gpu", LoweredKernel)`` or
    #: ``("cpu", KernelSpec, threads)``.
    atoms: tuple[tuple, ...]
    #: Unique ``(nbytes, direction)`` copies.
    transfers: tuple[tuple[int, str], ...]
    ev_atom: np.ndarray  #: (E,) int64 atom index, -1 for transfers
    ev_overhead: np.ndarray  #: (E,) float64 launch/region overhead
    ev_xfer: np.ndarray  #: (E,) int64 transfer index, -1 for kernels
    ev_counted: np.ndarray  #: (E,) bool: charge return reached the port's clock
    #: Kernel-event subsequence (atom index per kernel event, in order)
    #: and its overheads — the counters fold only sees these.
    kernel_atoms: np.ndarray
    kernel_overheads: np.ndarray
    #: Transfer-event subsequence (transfer index per transfer event).
    transfer_events: np.ndarray
    #: Exact byte totals by direction (Python ints, like the counters).
    bytes_to_device: int
    bytes_to_host: int


def capture_program(spec: RunSpec) -> ChargeProgram:
    """Run ``spec``'s port once in capture mode and lift its schedule.

    The capture platform uses default clocks — legitimate because the
    schedule is clock-independent — and projection stubs serve the
    problem setups, so capture cost is the port's host logic only.
    """
    from ..apps import APPS_BY_NAME
    from ..hardware.device import platform_for

    app = APPS_BY_NAME[spec.app]
    log = ChargeLog()
    ctx = ExecutionContext(
        platform=platform_for(spec.platform),
        precision=spec.precision,
        execute_kernels=False,
        charge_log=log,
    )
    with memo.projection_stubs():
        result = app.ports[spec.model](ctx, spec.config)

    events = log.events
    n_events = len(events)
    ev_atom = np.fromiter((e[0] for e in events), dtype=np.int64, count=n_events)
    ev_overhead = np.fromiter((e[1] for e in events), dtype=np.float64, count=n_events)
    ev_xfer = np.fromiter((e[2] for e in events), dtype=np.int64, count=n_events)
    ev_counted = np.fromiter((e[3] for e in events), dtype=bool, count=n_events)

    kernel_mask = ev_atom >= 0
    transfer_mask = ev_xfer >= 0
    bytes_to_device = 0
    bytes_to_host = 0
    for index in ev_xfer[transfer_mask]:
        nbytes, direction = log.transfers[index]
        if direction == "h2d":
            bytes_to_device += nbytes
        else:
            bytes_to_host += nbytes

    return ChargeProgram(
        app=spec.app,
        model=spec.model,
        checksum=result.checksum,
        atoms=tuple(log.atoms),
        transfers=tuple(log.transfers),
        ev_atom=ev_atom,
        ev_overhead=ev_overhead,
        ev_xfer=ev_xfer,
        ev_counted=ev_counted,
        kernel_atoms=ev_atom[kernel_mask],
        kernel_overheads=ev_overhead[kernel_mask],
        transfer_events=ev_xfer[transfer_mask],
        bytes_to_device=bytes_to_device,
        bytes_to_host=bytes_to_host,
    )


def cached_program(spec: RunSpec) -> ChargeProgram:
    """The memoized capture for ``spec``'s schedule signature."""
    return memo.PLAN_CACHE.lookup(
        ("plan", *spec.schedule_key()), lambda: capture_program(spec)
    )


def _accumulate(values: np.ndarray) -> float:
    """Strict left-fold sum — the exact addition order of a scalar
    ``+=`` accumulator (``np.sum`` is pairwise and differs in ulps)."""
    if len(values) == 0:
        return 0.0
    return float(np.add.accumulate(values)[-1])


def price_cell(program: ChargeProgram, spec: RunSpec) -> RunResult:
    """Price one captured program on one cell's device state.

    Atoms absent from :data:`~repro.engine.memo.KERNEL_CACHE` are
    priced in one columnar batch per device kind; every atom then goes
    through the same ``KERNEL_CACHE.lookup`` keys the scalar engine
    uses, so hits, misses and stored values are interchangeable with
    scalar runs.
    """
    from ..hardware.device import platform_for

    platform = platform_for(spec.platform)
    if spec.core_mhz is not None:
        platform.gpu.core_clock.set(spec.core_mhz)
    if spec.memory_mhz is not None:
        platform.gpu.memory_clock.set(spec.memory_mhz)
    gpu, host = platform.gpu, platform.host
    gpu_key = memo.gpu_state_key(gpu)
    cpu_key = memo.cpu_state_key(host)

    keys: list[tuple] = []
    for atom in program.atoms:
        if atom[0] == "gpu":
            keys.append(("gpu-timing", atom[1].cache_key(), gpu_key, spec.precision))
        else:
            keys.append(("cpu-timing", atom[1], cpu_key, spec.precision, atom[2]))

    # One columnar pricing call per device kind over the cache misses.
    batched: dict[int, KernelTiming] = {}
    gpu_pending = [
        i
        for i, atom in enumerate(program.atoms)
        if atom[0] == "gpu" and not memo.KERNEL_CACHE.contains(keys[i])
    ]
    if gpu_pending:
        batch = time_gpu_kernel_batch(
            [program.atoms[i][1] for i in gpu_pending], gpu, spec.precision
        )
        batched.update(zip(gpu_pending, batch))
    cpu_pending: dict[int, list[int]] = {}
    for i, atom in enumerate(program.atoms):
        if atom[0] == "cpu" and not memo.KERNEL_CACHE.contains(keys[i]):
            cpu_pending.setdefault(atom[2], []).append(i)
    for threads, indices in cpu_pending.items():
        batch = time_cpu_kernel_batch(
            [program.atoms[i][1] for i in indices], host, spec.precision, threads=threads
        )
        batched.update(zip(indices, batch))

    timings = [
        memo.KERNEL_CACHE.lookup(keys[i], lambda i=i: batched[i])
        for i in range(len(program.atoms))
    ]

    # --- folds (bit-identical reconstruction) -------------------------
    atom_seconds = np.array([t.seconds for t in timings] + [0.0])
    xfer_seconds = [
        platform.interconnect.transfer(nbytes, direction)
        for nbytes, direction in program.transfers
    ]
    transfer_seconds = np.array(xfer_seconds + [0.0])
    # Per-transfer energy through the same scalar helper, on the same
    # Python floats, as ``Toolchain.charge_transfer``.
    link_w = platform.interconnect.spec.active_w
    xfer_joules = np.array(
        [energy.transfer_joules(link_w, s) for s in xfer_seconds] + [0.0]
    )
    # The port's clock: each counted charge contributes its return
    # value (kernel seconds + overhead as one add, then the fold add —
    # the same two-IEEE-add sequence the scalar accumulator performs).
    kernel_contrib = atom_seconds[program.ev_atom] + program.ev_overhead
    transfer_contrib = np.where(
        program.ev_counted, transfer_seconds[program.ev_xfer], 0.0
    )
    seconds = _accumulate(
        np.where(program.ev_atom >= 0, kernel_contrib, transfer_contrib)
    )

    katoms = program.kernel_atoms
    kernel_seconds = _accumulate(atom_seconds[katoms])
    cycles = _accumulate(np.array([t.cycles for t in timings] + [0.0])[katoms])
    instructions = _accumulate(
        np.array([t.instructions for t in timings] + [0.0])[katoms]
    )
    dram_bytes = _accumulate(np.array([t.dram_bytes for t in timings] + [0.0])[katoms])
    atom_flops = np.array(
        [
            atom[1].spec.ops.flops if atom[0] == "gpu" else atom[1].ops.flops
            for atom in program.atoms
        ]
        + [0.0]
    )
    flops = _accumulate(atom_flops[katoms])
    launch_overhead = _accumulate(program.kernel_overheads)
    transfer_total = _accumulate(transfer_seconds[program.transfer_events])
    kernel_joules = _accumulate(np.array([t.joules for t in timings] + [0.0])[katoms])
    transfer_joules = _accumulate(xfer_joules[program.transfer_events])

    records = [
        timing.record(gpu.name if atom[0] == "gpu" else host.name)
        for atom, timing in zip(program.atoms, timings)
    ]
    counters = PerfCounters(
        kernel_seconds=kernel_seconds,
        transfer_seconds=transfer_total,
        host_seconds=0.0,
        launch_overhead_seconds=launch_overhead,
        instructions=instructions,
        cycles=cycles,
        flops=flops,
        dram_bytes=dram_bytes,
        bytes_to_device=program.bytes_to_device,
        bytes_to_host=program.bytes_to_host,
        kernel_launches=len(katoms),
        transfers=len(program.transfer_events),
        kernel_joules=kernel_joules,
        transfer_joules=transfer_joules,
        kernels=[records[i] for i in katoms],
    )
    # Same three-term addition sequence as ``apps.base.make_result``.
    joules = (
        energy.static_joules(platform.idle_watts, seconds)
        + counters.kernel_joules
        + counters.transfer_joules
    )
    return RunResult(
        app=program.app,
        model=program.model,
        platform=platform.name,
        precision=spec.precision,
        seconds=seconds,
        kernel_seconds=kernel_seconds,
        checksum=program.checksum,
        counters=counters,
        joules=joules,
    )


def price_specs(specs: Sequence[RunSpec]) -> list[RunResult]:
    """Price a batch of eligible cells columnar, preserving order.

    The serve batcher's cold-miss path: one capture per schedule
    signature, then per-cell pricing — no retry/journal machinery.
    Every spec must satisfy :func:`vector_eligible`.
    """
    for spec in specs:
        if not vector_eligible(spec):
            raise ValueError(f"{spec.label}: not priceable by the columnar engine")
    lattice = SpecLattice.from_specs(list(specs))
    results: list[RunResult | None] = [None] * len(lattice.rows)
    for _key, rows in lattice.groups:
        program = cached_program(lattice.rows[rows[0]])
        for index in rows:
            results[index] = price_cell(program, lattice.rows[index])
    return results  # type: ignore[return-value]


def _price_outcome(spec: RunSpec, program: ChargeProgram) -> RunOutcome:
    """One cell priced with the scalar path's observability envelope."""
    before = memo.KERNEL_CACHE.snapshot()
    started = time.perf_counter()
    result = price_cell(program, spec)
    validate_result(result)
    wall = time.perf_counter() - started
    delta = memo.KERNEL_CACHE.snapshot().since(before)
    return RunOutcome(
        spec=spec,
        result=result,
        wall_seconds=wall,
        cache_hits=delta.hits,
        cache_misses=delta.misses,
    )


def execute_vector(
    runs: Sequence[RunSpec],
    max_workers: int = 1,
    use_cache: bool = True,
    telemetry: bool = False,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    checkpoint: str | Path | CheckpointJournal | None = None,
) -> tuple[list[RunOutcome | None], ExecStats]:
    """Drop-in columnar counterpart of :func:`repro.exec.executor.execute`.

    Same contract: outcomes in submission order, content-equal specs
    share one outcome, failures come back as ``None`` slots plus
    :class:`~repro.exec.faults.RunError` rows, checkpoint journals are
    honoured.  Eligible cells are priced columnar in-process (the whole
    point is that this is fast); ineligible cells are delegated to the
    scalar executor, which may fan them out over ``max_workers``.

    Telemetry and active fault plans delegate the entire call: spans
    are recorded per charge and the chaos harness drives the scalar
    retry ladder, so both are scalar-engine semantics by definition.
    """
    policy = policy if policy is not None else RetryPolicy()
    if faults is None:
        faults = fault_plan_from_env()
    if telemetry or (faults is not None and faults.active):
        return execute(
            runs,
            max_workers=max_workers,
            use_cache=use_cache,
            telemetry=telemetry,
            policy=policy,
            faults=faults,
            checkpoint=checkpoint,
        )

    started = time.perf_counter()
    journal: CheckpointJournal | None = None
    if checkpoint is not None:
        journal = (
            checkpoint
            if isinstance(checkpoint, CheckpointJournal)
            else CheckpointJournal.open(checkpoint)
        )

    # Content-address the descriptors: first occurrence wins the slot.
    unique: list[RunSpec] = []
    slot_of: dict[str, int] = {}
    placement: list[int] = []
    for spec in runs:
        key = spec.content_key()
        if key not in slot_of:
            slot_of[key] = len(unique)
            unique.append(spec)
        placement.append(slot_of[key])

    executed: list[RunOutcome | None] = [None] * len(unique)
    errors: dict[int, RunError] = {}
    resumed = 0
    pending: dict[int, RunSpec] = {}
    for index, spec in enumerate(unique):
        restored = journal.restore(spec.content_key()) if journal is not None else None
        if restored is not None:
            executed[index] = restored
            resumed += 1
        else:
            pending[index] = spec

    vector_cells = {i: s for i, s in pending.items() if vector_eligible(s)}
    tail_cells = {i: s for i, s in pending.items() if i not in vector_cells}

    interrupted = False
    try:
        with _cache_setting(use_cache):
            indices = sorted(vector_cells)
            lattice = SpecLattice.from_specs([vector_cells[i] for i in indices])
            for _key, rows in lattice.groups:
                program: ChargeProgram | None
                try:
                    program = cached_program(lattice.rows[rows[0]])
                except Exception:
                    program = None  # every cell of the group falls back
                for row in rows:
                    index, spec = indices[row], lattice.rows[row]
                    payload: RunOutcome | RunError
                    if program is not None:
                        try:
                            payload = _price_outcome(spec, program)
                        except Exception:
                            payload = run_with_retry(spec, policy, faults=faults)
                    else:
                        payload = run_with_retry(spec, policy, faults=faults)
                    if isinstance(payload, RunError):
                        errors[index] = payload
                    else:
                        executed[index] = payload
                        if journal is not None:
                            journal.record(payload)
    except KeyboardInterrupt:
        interrupted = True

    vector_stats = ExecStats(
        requested_runs=len(runs) - len(tail_cells),
        unique_runs=len(unique) - len(tail_cells),
        workers=1,
        wall_seconds=time.perf_counter() - started,
        run_seconds=sum(o.wall_seconds for o in executed if o is not None),
        cache_hits=sum(o.cache_hits for o in executed if o is not None),
        cache_misses=sum(o.cache_misses for o in executed if o is not None),
        per_run=[
            (o.spec.label, o.wall_seconds, o.cache_hits, o.cache_misses, 0, 0, 0, 0)
            for o in executed
            if o is not None
        ],
        limited_by=_limited_by_tallies(executed),
        failures=[errors[index] for index in sorted(errors)],
        resumed_runs=resumed,
    )
    if interrupted:
        if journal is not None:
            journal.close()
        raise ExecutionInterrupted(
            stats=vector_stats,
            completed=sum(1 for o in executed if o is not None),
            checkpoint=journal.path if journal is not None else None,
        )

    if tail_cells:
        tail_indices = sorted(tail_cells)
        try:
            tail_outcomes, tail_stats = execute(
                [tail_cells[i] for i in tail_indices],
                max_workers=max_workers,
                use_cache=use_cache,
                telemetry=False,
                policy=policy,
                faults=faults,
                checkpoint=journal,  # execute() closes it
            )
        except ExecutionInterrupted as exc:
            merged = vector_stats.merge(exc.stats)
            raise ExecutionInterrupted(
                stats=merged,
                completed=sum(1 for o in executed if o is not None) + exc.completed,
                checkpoint=exc.checkpoint,
            ) from None
        for index, outcome in zip(tail_indices, tail_outcomes):
            executed[index] = outcome
        stats = vector_stats.merge(tail_stats)
    else:
        if journal is not None:
            journal.close()
        stats = vector_stats

    outcomes = [executed[slot] for slot in placement]
    return outcomes, stats
