"""Synthetic memory-trace generation.

Table I of the paper reports each proxy application's last-level-cache
miss rate.  We reproduce the measurement rather than the number: each
kernel's :class:`~repro.engine.kernel.AccessPattern` is expanded into a
concrete byte-address trace here, then replayed through the
set-associative cache model (``repro.hardware.cache``).

Traces are sampled: replaying the full footprint of a paper-sized run
is unnecessary because miss rates converge quickly once the trace is a
few multiples of the cache.  When a working set greatly exceeds the
trace budget, the footprint and the cache are scaled together, which
preserves the capacity-miss behaviour.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

import numpy as np

from ..hardware.cache import CacheStats, SetAssociativeCache
from ..hardware.cache_vec import VectorSetAssociativeCache
from ..hardware.specs import CacheSpec
from ..obs import spans as obs_spans
from .kernel import AccessKind, AccessPattern

#: Upper bound on generated trace length (addresses).
DEFAULT_TRACE_BUDGET = 200_000

#: Footprints larger than this are scaled down together with the cache.
DEFAULT_FOOTPRINT_CAP = 16 * 1024 * 1024

#: Replay engines: the vectorized batch simulator is the production
#: default; the scalar dict model is the differential reference.
REPLAY_ENGINES = ("vector", "scalar")
DEFAULT_REPLAY_ENGINE = "vector"


@dataclass(frozen=True)
class TraceResult:
    """Outcome of replaying a pattern through a cache model."""

    pattern: AccessPattern
    stats: CacheStats
    scale: float  # footprint/cache scaling factor applied (<=1)

    @property
    def miss_rate(self) -> float:
        return self.stats.miss_rate


def _rng(pattern: AccessPattern) -> np.random.Generator:
    """Deterministic per-pattern RNG (same pattern -> same trace).

    Seeded from a stable digest of the pattern's content — never from
    Python's ``hash()``, whose string hashing is salted per process
    (PYTHONHASHSEED), which would make identical patterns generate
    different traces across processes.
    """
    canonical = (
        f"{pattern.kind.value}|{int(pattern.working_set_bytes)}|{pattern.table_entries}"
    )
    return np.random.default_rng(zlib.crc32(canonical.encode("ascii")))


def generate_trace(pattern: AccessPattern, budget: int = DEFAULT_TRACE_BUDGET) -> np.ndarray:
    """Byte-address trace (int64 array) realising ``pattern``.

    The trace is generated over ``min(working_set, FOOTPRINT_CAP)``
    bytes; callers that scale the footprint must scale the cache too
    (``replay_pattern`` does this automatically).
    """
    footprint = int(min(pattern.working_set_bytes, DEFAULT_FOOTPRINT_CAP))
    footprint = max(footprint, 4 * pattern.request_bytes)
    step = max(1, pattern.request_bytes)
    rng = _rng(pattern)

    if pattern.kind is AccessKind.STREAMING:
        n = min(budget, footprint // step)
        base = (np.arange(n, dtype=np.int64) * step) % footprint
        return _interleave_reuse(base, pattern.reuse_fraction, rng)

    if pattern.kind is AccessKind.STENCIL:
        # Sweep a 3D structured grid touching the 7-point neighbourhood:
        # the planes of the previous sweep stay resident, giving the
        # high locality LULESH shows.
        elems = footprint // step
        side = max(4, int(round(elems ** (1.0 / 3.0))))
        n_cells = min(budget // 7, side**3)
        idx = np.arange(n_cells, dtype=np.int64)
        offsets = np.array([0, 1, -1, side, -side, side * side, -side * side], dtype=np.int64)
        addrs = ((idx[:, None] + offsets[None, :]) % (side**3)) * step
        return addrs.reshape(-1)

    if pattern.kind is AccessKind.NEIGHBOR_LIST:
        # Particles grouped in cells; each cell re-reads its 27
        # neighbouring cells' particles.  Adjacent particles share
        # lines; neighbouring cells revisit recently-touched spans.
        elems = footprint // step
        particles_per_cell = 16
        n_cells = max(8, elems // particles_per_cell)
        side = max(2, int(round(n_cells ** (1.0 / 3.0))))
        n_cells = side**3
        visits = min(budget // (27 * 4), n_cells)
        cells = np.arange(visits, dtype=np.int64)
        neigh = np.array(
            [dx + dy * side + dz * side * side for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)],
            dtype=np.int64,
        )
        cell_ids = (cells[:, None] + neigh[None, :]) % n_cells
        # Sample 4 particles per visited neighbour cell.
        samples = rng.integers(0, particles_per_cell, size=(visits, 27, 4))
        addrs = (cell_ids[:, :, None] * particles_per_cell + samples) * step
        return addrs.reshape(-1) % footprint

    if pattern.kind is AccessKind.BINARY_SEARCH:
        # Each lookup descends a sorted table (upper levels shared
        # across lookups, cache-resident; leaves effectively random)
        # and then gathers the associated data rows — index-matrix row
        # plus interpolation points — scattered over the whole table.
        # The data gathers are what push XSBench to Table I's 53%.
        entries = pattern.table_entries or footprint // step
        entries = min(entries, footprint // step)
        levels = max(1, int(math.ceil(math.log2(max(2, entries)))))
        data_rows = 16
        n_lookups = max(1, budget // (levels + 1 + data_rows))
        targets = rng.integers(0, entries, size=n_lookups)
        addrs = np.empty((n_lookups, levels + 1 + data_rows), dtype=np.int64)
        lo = np.zeros(n_lookups, dtype=np.int64)
        hi = np.full(n_lookups, entries, dtype=np.int64)
        for level in range(levels):
            mid = (lo + hi) // 2
            addrs[:, level] = mid * step
            go_right = targets > mid
            lo = np.where(go_right, mid + 1, lo)
            hi = np.where(go_right, mid, hi)
        addrs[:, levels] = targets * step
        lines = footprint // 64
        addrs[:, levels + 1 :] = rng.integers(0, max(1, lines), size=(n_lookups, data_rows)) * 64
        return addrs.reshape(-1) % footprint

    if pattern.kind is AccessKind.CSR_SPMV:
        # Stream matrix values and column indices (no reuse), and
        # gather x with the 27-point FEM sparsity: column offsets of
        # {-1, 0, +1} x {-side, 0, +side} x {-side^2, 0, +side^2}.  The
        # plane-distance gathers (side^2 strides) are what defeat the
        # cache on paper-sized meshes (Table I: 39%).
        # A GPU runs many rows concurrently: model 128 far-apart row
        # streams interleaved access-by-access, which divides the cache
        # between streams and defeats the x-window locality a single
        # serial sweep would enjoy.
        concurrency = 128
        elems = footprint // step
        n_rows = max(64, elems // 27)
        side = max(4, int(round(n_rows ** (1.0 / 3.0))))
        nnz = min(budget // 2, elems)
        lane = np.arange(nnz, dtype=np.int64) % concurrency
        pos = np.arange(nnz, dtype=np.int64) // concurrency
        rows = np.mod(lane * (n_rows // concurrency) + pos // 27, n_rows)
        stream_idx = np.mod(rows * 27 + pos % 27, elems)
        stream = stream_idx * step
        d1 = rng.integers(-1, 2, size=nnz)
        d2 = rng.integers(-1, 2, size=nnz) * side
        d3 = rng.integers(-1, 2, size=nnz) * side * side
        x_idx = np.mod(rows + d1 + d2 + d3, n_rows)
        gather = (footprint // 2 + x_idx * step) % footprint
        trace = np.empty(nnz * 2, dtype=np.int64)
        trace[0::2] = stream
        trace[1::2] = gather
        return trace

    raise AssertionError(f"unhandled access kind {pattern.kind}")


def _interleave_reuse(base: np.ndarray, reuse_fraction: float, rng: np.random.Generator) -> np.ndarray:
    """Mix re-touches of recent addresses into a base stream."""
    if reuse_fraction <= 0 or len(base) < 16:
        return base
    n_reuse = int(len(base) * reuse_fraction)
    positions = np.sort(rng.integers(8, len(base), size=n_reuse))
    lookback = rng.integers(1, 8, size=n_reuse)
    out = []
    prev = 0
    for pos, back in zip(positions, lookback):
        out.append(base[prev:pos])
        out.append(base[pos - back : pos - back + 1])
        prev = pos
    out.append(base[prev:])
    return np.concatenate(out)


def scaled_cache_spec(
    pattern: AccessPattern, cache_spec: CacheSpec
) -> tuple[CacheSpec, float]:
    """The cache spec a replay of ``pattern`` actually simulates.

    When the pattern's working set exceeds the trace footprint cap the
    cache is scaled down by the same ratio, preserving the working-set
    to cache-size ratio that drives capacity misses.  This scaled spec
    (not the nominal one) keys the trace memo cache.
    """
    scale = 1.0
    if pattern.working_set_bytes > DEFAULT_FOOTPRINT_CAP:
        scale = DEFAULT_FOOTPRINT_CAP / pattern.working_set_bytes
    size = int(cache_spec.size_bytes * scale)
    # Keep geometry legal: at least one set, same line size and ways.
    min_size = cache_spec.line_bytes * cache_spec.ways
    size = max(min_size, (size // min_size) * min_size)
    return (
        CacheSpec(size_bytes=size, line_bytes=cache_spec.line_bytes, ways=cache_spec.ways),
        scale,
    )


def make_replay_cache(
    spec: CacheSpec, engine: str = DEFAULT_REPLAY_ENGINE
) -> VectorSetAssociativeCache | SetAssociativeCache:
    """Instantiate the requested replay engine on ``spec``."""
    if engine == "vector":
        return VectorSetAssociativeCache(spec)
    if engine == "scalar":
        return SetAssociativeCache(spec)
    raise ValueError(f"unknown replay engine {engine!r}; expected one of {REPLAY_ENGINES}")


def replay_pattern(
    pattern: AccessPattern,
    cache_spec: CacheSpec,
    budget: int = DEFAULT_TRACE_BUDGET,
    engine: str = DEFAULT_REPLAY_ENGINE,
) -> TraceResult:
    """Measure ``pattern``'s miss rate on a cache of ``cache_spec``.

    Replays run array-native through the selected engine and are
    memoized content-addressed in
    :data:`~repro.engine.memo.TRACE_CACHE`: repeated characterizations
    of the same (pattern, scaled cache, budget) hit instead of
    re-simulating.  Both engines are bit-identical, so neither the
    memo layer nor the engine choice can change a result.
    """
    if engine not in REPLAY_ENGINES:
        raise ValueError(f"unknown replay engine {engine!r}; expected one of {REPLAY_ENGINES}")
    from .memo import TRACE_CACHE  # late: keep this module importable standalone

    scaled_spec, scale = scaled_cache_spec(pattern, cache_spec)

    def compute() -> TraceResult:
        rec = obs_spans.current()
        with rec.span("characterize", f"generate:{pattern.kind.value}", "trace",
                      budget=budget):
            trace = generate_trace(pattern, budget=budget)
        cache = make_replay_cache(scaled_spec, engine)
        with rec.span("characterize", f"replay:{pattern.kind.value}", "trace",
                      engine=engine, accesses=len(trace)):
            # Warm-up pass then measured pass: Table I reports steady state.
            cache.replay(trace[: len(trace) // 4])
            measured = cache.replay(trace)
        return TraceResult(pattern=pattern, stats=measured, scale=scale)

    key = (pattern.kind.value, pattern, scaled_spec, budget)
    return TRACE_CACHE.lookup(key, compute)
