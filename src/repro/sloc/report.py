"""Table IV: lines of code added per port, measured on our own ports.

The paper counts lines *added* starting from the serial CPU
implementation.  In this codebase the serial numerics (reference
implementation + device kernels) are shared by every port; what each
model forces you to *write* is its port module — OpenCL's host
boilerplate, C++ AMP's views and launches, OpenACC's annotated loops,
OpenMP's pragma wrappers.  Counting each port module with the
SLOCCount-equivalent reproduces Table IV's measurement procedure; the
paper's original C/C++ counts are shipped alongside for comparison
(absolute values differ — Python is denser than C — but the ordering
is the reproduced claim).
"""

from __future__ import annotations

import inspect
from pathlib import Path

from ..apps.base import ProxyApp
from .counter import count_file_sloc

#: Table IV of the paper, verbatim (lines changed from serial C code).
PAPER_TABLE4: dict[str, dict[str, int]] = {
    "read-benchmark": {"OpenMP": 3, "OpenCL": 181, "C++ AMP": 42, "OpenACC": 40},
    "LULESH": {"OpenMP": 107, "OpenCL": 1357, "C++ AMP": 1087, "OpenACC": 1276},
    "CoMD": {"OpenMP": 23, "OpenCL": 3716, "C++ AMP": 188, "OpenACC": 183},
    "XSBench": {"OpenMP": 13, "OpenCL": 1468, "C++ AMP": 83, "OpenACC": 113},
    "miniFE": {"OpenMP": 18, "OpenCL": 2869, "C++ AMP": 260, "OpenACC": 43},
}


def port_source_file(app: ProxyApp, model: str) -> Path:
    """Path of the module implementing one port."""
    port = app.ports[model]
    module = inspect.getmodule(port)
    if module is None or module.__file__ is None:
        raise ValueError(f"{app.name}/{model}: cannot locate port source")
    return Path(module.__file__)


def measure_port_sloc(app: ProxyApp, models: tuple[str, ...] = ("OpenMP", "OpenCL", "C++ AMP", "OpenACC")) -> dict[str, int]:
    """Raw SLOC of each port module of ``app``."""
    return {model: count_file_sloc(port_source_file(app, model)) for model in models}


def measure_lines_added(app: ProxyApp, models: tuple[str, ...] = ("OpenMP", "OpenCL", "C++ AMP", "OpenACC")) -> dict[str, int]:
    """Table IV's quantity: lines added *starting from the serial CPU
    implementation*.

    The serial port is the baseline every other port was derived from;
    its SLOC is subtracted from each port's SLOC (floored at 1 — every
    port changes at least one line).
    """
    baseline = count_file_sloc(port_source_file(app, "Serial"))
    added = {}
    for model in models:
        sloc = count_file_sloc(port_source_file(app, model))
        added[model] = max(1, sloc - baseline)
    return added


def table4(apps: tuple[ProxyApp, ...]) -> dict[str, dict[str, int]]:
    """Measured Table IV (lines added) over a set of applications."""
    return {app.name: measure_lines_added(app) for app in apps}
