"""Source-lines-of-code counting (the paper's SLOCCount [17]).

Table IV measures programmer effort as the number of source lines
added to port each application, "measured using the SLOCCount tool
which does not consider the comments in the code".  This module
reimplements that measurement for Python sources (token-accurate:
comments, blank lines and docstrings are excluded) and for C-like
sources (``//`` and ``/* */`` comments excluded), so the reproduction
can run the same tool over its own ports.
"""

from __future__ import annotations

import io
import tokenize
from pathlib import Path


def count_python_sloc(source: str) -> int:
    """Logical source lines of Python code, SLOCCount-style.

    A line counts when it carries at least one token that is neither a
    comment, a blank, nor part of a documentation string (a string
    expression statement).
    """
    code_lines: set[int] = set()
    docstring_lines: set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError) as exc:
        raise ValueError(f"cannot tokenize source: {exc}") from exc

    # A STRING token is a docstring when the statement consists of the
    # string alone: the previous significant token is NEWLINE, INDENT,
    # DEDENT or start-of-file, and the next is NEWLINE.
    significant = [
        t for t in tokens
        if t.type not in (tokenize.COMMENT, tokenize.NL, tokenize.ENCODING)
    ]
    for i, tok in enumerate(significant):
        if tok.type != tokenize.STRING:
            continue
        prev_ok = i == 0 or significant[i - 1].type in (
            tokenize.NEWLINE, tokenize.INDENT, tokenize.DEDENT,
        )
        next_ok = i + 1 >= len(significant) or significant[i + 1].type == tokenize.NEWLINE
        if prev_ok and next_ok:
            docstring_lines.update(range(tok.start[0], tok.end[0] + 1))

    for tok in tokens:
        if tok.type in (
            tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE, tokenize.INDENT,
            tokenize.DEDENT, tokenize.ENCODING, tokenize.ENDMARKER,
        ):
            continue
        for line in range(tok.start[0], tok.end[0] + 1):
            code_lines.add(line)
    return len(code_lines - docstring_lines)


def count_clike_sloc(source: str) -> int:
    """Logical source lines of C/C++/OpenCL-style code.

    Strips ``//`` line comments and ``/* */`` block comments (string
    literals are respected), then counts non-blank lines.
    """
    out: list[str] = []
    i = 0
    n = len(source)
    in_block = False
    in_line = False
    in_string: str | None = None
    current: list[str] = []
    while i < n:
        ch = source[i]
        nxt = source[i + 1] if i + 1 < n else ""
        if in_block:
            if ch == "*" and nxt == "/":
                in_block = False
                i += 2
                continue
            if ch == "\n":
                out.append("".join(current))
                current = []
            i += 1
            continue
        if in_line:
            if ch == "\n":
                in_line = False
                out.append("".join(current))
                current = []
            i += 1
            continue
        if in_string:
            current.append(ch)
            if ch == "\\":
                if nxt:
                    current.append(nxt)
                    i += 2
                    continue
            elif ch == in_string:
                in_string = None
            i += 1
            continue
        if ch in ("\"", "'"):
            in_string = ch
            current.append(ch)
            i += 1
            continue
        if ch == "/" and nxt == "/":
            in_line = True
            i += 2
            continue
        if ch == "/" and nxt == "*":
            in_block = True
            i += 2
            continue
        if ch == "\n":
            out.append("".join(current))
            current = []
            i += 1
            continue
        current.append(ch)
        i += 1
    out.append("".join(current))
    return sum(1 for line in out if line.strip())


def count_file_sloc(path: str | Path) -> int:
    """Count SLOC of a file, dispatching on its extension."""
    path = Path(path)
    source = path.read_text()
    if path.suffix == ".py":
        return count_python_sloc(source)
    if path.suffix in (".c", ".h", ".cpp", ".hpp", ".cc", ".cl", ".cu"):
        return count_clike_sloc(source)
    raise ValueError(f"unsupported source type: {path.suffix!r}")
