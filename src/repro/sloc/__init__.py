"""SLOC counting (the paper's SLOCCount [17]) and Table IV."""

from .counter import count_clike_sloc, count_file_sloc, count_python_sloc
from .report import (
    PAPER_TABLE4,
    measure_lines_added,
    measure_port_sloc,
    port_source_file,
    table4,
)

__all__ = [
    "PAPER_TABLE4",
    "count_clike_sloc",
    "count_file_sloc",
    "count_python_sloc",
    "measure_lines_added",
    "measure_port_sloc",
    "port_source_file",
    "table4",
]
